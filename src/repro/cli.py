"""Command-line interface for the Splitwise reproduction.

Five subcommands cover the common workflows without writing Python:

* ``repro-sim trace`` — generate a synthetic trace (Azure-like distributions)
  and write it to CSV.
* ``repro-sim simulate`` — run a trace (or a freshly generated one) through a
  cluster design and print the latency/SLO summary.  When replaying a CSV
  trace, ``--rate`` rescales it and ``--duration`` truncates it.
* ``repro-sim scenario`` — run a named time-varying traffic preset (diurnal,
  burst-storm, failure-under-load, mixed-tenant) with the dynamic pool
  autoscaler and compare SLO attainment and machine-hours against the
  statically provisioned baseline.
* ``repro-sim fleet`` — run a preset across a multi-cluster fleet behind the
  tenant-aware fleet router, with cloud-burst provisioning, and report
  per-tenant SLO satisfaction plus a static-vs-burst machine-hours
  comparison.
* ``repro-sim provision`` — sweep machine counts for a design family and
  report the cost-optimal configuration for a target load.
* ``repro-sim designs`` — list the built-in cluster designs with their cost
  and power at a given size.

Examples::

    repro-sim trace --workload coding --rate 5 --duration 120 -o coding.csv
    repro-sim simulate --design Splitwise-HA --prompt 2 --token 4 --rate 8
    repro-sim simulate --trace coding.csv --rate 12 --duration 60
    repro-sim scenario --preset diurnal --seed 0
    repro-sim scenario --preset burst-storm --scale 0.5 --json
    repro-sim fleet --preset mixed-tenant --clusters 2
    repro-sim fleet --preset diurnal --clusters 3 --policy jsq --timeline
    repro-sim fleet --preset failure-storm --chaos failure-storm --json
    repro-sim fleet --preset mixed-tenant --chaos failure-storm --retry 4 --hedge
    repro-sim simulate --prompt 3 --token 2 --failures 30:prompt-0
    repro-sim provision --design Splitwise-HH --workload coding --rate 10
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Sequence

from repro.core.cluster import simulate_design
from repro.core.designs import get_design_family
from repro.core.provisioning import OptimizationGoal, Provisioner, estimate_pool_sizes
from repro.faults.presets import CHAOS_PRESETS
from repro.fleet.router import ROUTER_POLICIES
from repro.models.llm import get_model
from repro.workload.generator import generate_trace
from repro.workload.scenarios import SCENARIO_PRESETS, get_scenario
from repro.workload.trace import Trace

_DESIGN_FAMILIES = (
    "Baseline-A100",
    "Baseline-H100",
    "Splitwise-AA",
    "Splitwise-HH",
    "Splitwise-HA",
    "Splitwise-HHcap",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-sim`` entry point."""
    parser = argparse.ArgumentParser(prog="repro-sim", description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace = subparsers.add_parser("trace", help="generate a synthetic request trace")
    trace.add_argument("--workload", choices=("coding", "conversation"), default="conversation")
    trace.add_argument("--rate", type=float, default=2.0, help="requests per second")
    trace.add_argument("--duration", type=float, default=60.0, help="trace length in seconds")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("-o", "--output", required=True, help="CSV file to write")

    simulate = subparsers.add_parser("simulate", help="simulate a cluster design on a trace")
    simulate.add_argument("--design", choices=_DESIGN_FAMILIES, default="Splitwise-HH")
    simulate.add_argument("--prompt", type=int, default=2, help="prompt machines (or total for baselines)")
    simulate.add_argument("--token", type=int, default=1, help="token machines (ignored for baselines)")
    simulate.add_argument("--model", default="Llama2-70B", help="LLM to serve")
    simulate.add_argument("--trace", help="CSV trace to replay (generated if omitted)")
    simulate.add_argument("--workload", choices=("coding", "conversation"), default="conversation")
    simulate.add_argument(
        "--rate", type=float, default=None,
        help="requests per second (default 2.0; rescales a replayed --trace)",
    )
    simulate.add_argument(
        "--duration", type=float, default=None,
        help="trace length in seconds (default 60.0; truncates a replayed --trace)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--failures", action="append", default=[], metavar="TIME:MACHINE",
        help="inject a machine failure, e.g. --failures 30:prompt-0 (repeatable)",
    )
    simulate.add_argument("--json", action="store_true", help="print machine-readable JSON")

    scenario = subparsers.add_parser(
        "scenario", help="run a time-varying traffic preset with the pool autoscaler"
    )
    scenario.add_argument("--preset", choices=sorted(SCENARIO_PRESETS), default="diurnal")
    scenario.add_argument("--model", default="Llama2-70B", help="LLM to serve")
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink/grow the preset's cluster and load proportionally",
    )
    scenario.add_argument(
        "--no-autoscaler", action="store_true",
        help="skip the autoscaled run (static baseline only)",
    )
    scenario.add_argument(
        "--interval", type=float, default=None, help="autoscaler tick interval in seconds"
    )
    scenario.add_argument("--timeline", action="store_true", help="print the re-purposing timeline")
    scenario.add_argument("--json", action="store_true", help="print machine-readable JSON")

    fleet = subparsers.add_parser(
        "fleet", help="run a preset across a multi-cluster fleet with cloud bursting"
    )
    fleet.add_argument("--preset", choices=sorted(SCENARIO_PRESETS), default="mixed-tenant")
    fleet.add_argument("--clusters", type=int, default=2, help="initially active clusters")
    fleet.add_argument(
        "--burst-clusters", type=int, default=1,
        help="standby clusters the provisioner may burst into",
    )
    fleet.add_argument(
        "--policy", choices=ROUTER_POLICIES, default="slo-feedback", help="fleet routing policy"
    )
    fleet.add_argument("--model", default="Llama2-70B", help="LLM to serve")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink/grow each cluster and its per-cluster load proportionally",
    )
    fleet.add_argument(
        "--no-burst", action="store_true",
        help="skip the burst run (static whole-fleet baseline only)",
    )
    fleet.add_argument(
        "--chaos", choices=sorted(CHAOS_PRESETS) + ["none"], default=None,
        help="arm a chaos preset (stochastic faults + router bans + admission "
             "control); defaults to the scenario preset's own chaos setting, "
             "'none' forces chaos off",
    )
    fleet.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the stochastic fault plan (independent of the trace --seed)",
    )
    fleet.add_argument(
        "--retry", type=int, default=None, metavar="N",
        help="retry budget per request (overrides the chaos preset's policy; "
             "0 disables retries)",
    )
    fleet.add_argument(
        "--retry-seed", type=int, default=None,
        help="seed for the retry-backoff jitter (independent of --seed and --fault-seed)",
    )
    fleet.add_argument(
        "--hedge", action=argparse.BooleanOptionalAction, default=None,
        help="force tail-latency hedging on/off (default: the chaos preset's setting)",
    )
    fleet.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="fleet-wide end-to-end deadline in milliseconds (replaces the "
             "chaos preset's deadline config)",
    )
    fleet.add_argument(
        "--no-reliability", action="store_true",
        help="strip the request-lifecycle layer (retries, hedging, deadlines, "
             "degraded service) — the pre-lifecycle baseline",
    )
    fleet.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="shard the fleet across N engine workers (bit-identical to "
             "serial; 1 runs the shard barrier loop in-process; coupled "
             "configurations fall back to the serial engine with the "
             "reasons recorded in --json provenance)",
    )
    fleet.add_argument(
        "--epoch-s", type=float, default=None, metavar="S",
        help="barrier spacing for --parallel in simulated seconds "
             "(default: trace window / 64; any positive value is "
             "parity-correct)",
    )
    fleet.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome/Perfetto trace-event JSON of the run "
             "(open it at ui.perfetto.dev); observes the burst run unless "
             "--no-burst",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the sim-time metrics series (.csv selects CSV, anything "
             "else JSONL; a .prom Prometheus snapshot lands alongside)",
    )
    fleet.add_argument(
        "--metrics-interval", type=float, default=1.0, metavar="S",
        help="simulated seconds between metrics samples",
    )
    fleet.add_argument("--timeline", action="store_true", help="print the provisioning timeline")
    fleet.add_argument("--json", action="store_true", help="print machine-readable JSON")

    provision = subparsers.add_parser("provision", help="search machine counts for a target load")
    provision.add_argument("--design", choices=_DESIGN_FAMILIES, default="Splitwise-HH")
    provision.add_argument("--workload", choices=("coding", "conversation"), default="coding")
    provision.add_argument("--rate", type=float, required=True, help="target requests per second")
    provision.add_argument("--goal", choices=("cost", "power"), default="cost")
    provision.add_argument("--duration", type=float, default=45.0, help="evaluation trace length")
    provision.add_argument("--spread", type=int, default=2, help="sweep +/- this many machines around the estimate")
    provision.add_argument("--seed", type=int, default=0)

    designs = subparsers.add_parser("designs", help="list cluster designs with cost and power")
    designs.add_argument("--prompt", type=int, default=2)
    designs.add_argument("--token", type=int, default=1)

    lint = subparsers.add_parser(
        "lint", help="run simlint, the determinism & simulation-invariant linter"
    )
    lint.add_argument("paths", nargs="*", default=["src"], help="files/directories to lint")
    lint.add_argument("--json", action="store_true", help="emit machine-readable JSON findings")
    lint.add_argument("--baseline", default=None, metavar="FILE", help="baseline file to apply")
    lint.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    lint.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="accept every current finding into FILE and exit 0",
    )
    lint.add_argument(
        "--strict-baseline", action="store_true",
        help="fail when the baseline has stale entries",
    )
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalog and exit")

    return parser


def _parse_failures(values: Sequence[str]) -> tuple[tuple[float, str], ...]:
    """Parse repeated ``--failures TIME:MACHINE`` arguments.

    Raises:
        ValueError: for a malformed spec (missing colon, non-numeric time).
    """
    failures = []
    for value in values:
        time_part, sep, machine = value.partition(":")
        if not sep or not machine:
            raise ValueError(f"--failures expects TIME:MACHINE, got {value!r}")
        try:
            time_s = float(time_part)
        except ValueError:
            raise ValueError(f"--failures time must be a number, got {value!r}") from None
        failures.append((time_s, machine))
    return tuple(failures)


def _build_design(family: str, prompt: int, token: int):
    factory = get_design_family(family)
    if family.startswith("Baseline"):
        return factory(prompt + token if token else prompt)
    return factory(prompt, token)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = generate_trace(args.workload, rate_rps=args.rate, duration_s=args.duration, seed=args.seed)
    path = trace.to_csv(args.output)
    print(f"wrote {len(trace)} requests ({args.workload}, {args.rate:g} RPS, {args.duration:g}s) to {path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    design = _build_design(args.design, args.prompt, args.token)
    model = get_model(args.model)
    notes = []
    if args.trace:
        trace = Trace.from_csv(args.trace)
        # Explicit --rate / --duration reshape the replayed trace instead of
        # being silently ignored.
        if args.rate is not None:
            try:
                trace = trace.scaled_to_rate(args.rate)
            except ValueError as error:
                print(f"error: cannot rescale replayed trace: {error}", file=sys.stderr)
                return 1
            notes.append(f"rescaled replayed trace to {args.rate:g} RPS")
        if args.duration is not None:
            trace = trace.truncated(args.duration)
            notes.append(f"truncated replayed trace to {args.duration:g}s ({len(trace)} requests)")
        if not len(trace):
            print(
                f"error: reshaped trace {args.trace} contains no requests "
                "(is --duration shorter than the first arrival?)",
                file=sys.stderr,
            )
            return 1
    else:
        rate = args.rate if args.rate is not None else 2.0
        duration = args.duration if args.duration is not None else 60.0
        trace = generate_trace(args.workload, rate_rps=rate, duration_s=duration, seed=args.seed)
    try:
        failures = _parse_failures(args.failures)
        result = simulate_design(design, trace, model=model, failures=failures)
    except ValueError as error:
        # Covers malformed --failures specs and (from prepare-time
        # validation) failure injections naming machines the design lacks.
        print(f"error: {error}", file=sys.stderr)
        return 1
    metrics = result.request_metrics()
    slo = result.slo_report(model=model)
    summary = {
        "design": design.label,
        "model": model.name,
        "seed": args.seed,
        "workload": None if args.trace else args.workload,
        "trace": trace.name,
        "requests": len(trace),
        "completion_rate": round(result.completion_rate, 4),
        "throughput_rps": round(metrics.throughput_rps, 3),
        "ttft_p50_ms": round(metrics.ttft.p50 * 1e3, 1),
        "ttft_p90_ms": round(metrics.ttft.p90 * 1e3, 1),
        "tbt_p50_ms": round(metrics.tbt.p50 * 1e3, 1),
        "tbt_p90_ms": round(metrics.tbt.p90 * 1e3, 1),
        "e2e_p50_s": round(metrics.e2e.p50, 2),
        "e2e_p90_s": round(metrics.e2e.p90, 2),
        "energy_wh": round(result.total_energy_wh(), 1),
        "cost_per_hour": round(design.cost_per_hour, 1),
        "power_kw": round(design.provisioned_power_kw, 2),
        "slo_satisfied": slo.satisfied,
    }
    if failures:
        summary["failures"] = [f"{t:g}:{name}" for t, name in failures]
        summary["restarted_requests"] = sum(1 for r in result.requests if r.restarts)
    if notes:
        summary["notes"] = notes
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        width = max(len(key) for key in summary)
        for key, value in summary.items():
            print(f"{key:<{width}}  {value}")
    return 0 if slo.satisfied else 2


def _scenario_run_summary(result, slo) -> dict:
    """One run's JSON summary for the ``scenario`` subcommand."""
    metrics = result.request_metrics()
    summary = {
        "completion_rate": round(result.completion_rate, 4),
        "throughput_rps": round(metrics.throughput_rps, 3),
        "ttft_p90_ms": round(metrics.ttft.p90 * 1e3, 1),
        "tbt_p90_ms": round(metrics.tbt.p90 * 1e3, 1),
        "e2e_p90_s": round(metrics.e2e.p90, 2),
        "slo_satisfied": slo.satisfied,
        "slo_violations": len(slo.violations()),
        "slo_samples": dict(slo.samples),
        "machine_hours": round(result.machine_hours(), 3),
        "pool_switches": result.scheduler.pool_switches,
    }
    if result.autoscaler is not None:
        summary["repurposes"] = result.autoscaler.repurpose_count()
        summary["autoscaler_actions"] = len(result.autoscaler.timeline)
    return summary


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import prepare_scenario_run

    preset = get_scenario(args.preset)
    model = get_model(args.model)
    static_sim, trace, failures = prepare_scenario_run(
        preset, seed=args.seed, scale=args.scale, autoscaled=False, model=model
    )
    static_result = static_sim.run(trace, failures=failures)
    static_slo = static_result.slo_report(model=model)
    payload = {
        "preset": preset.name,
        "description": preset.description,
        # Provenance: everything needed to reproduce the run from the
        # artifact alone.
        "seed": args.seed,
        "scale": args.scale,
        "model": model.name,
        "routing": static_sim.routing,
        "trace": trace.name,
        "requests": len(trace),
        "duration_s": round(preset.duration_s, 1),
        "design": static_sim.design.label,
        "static": _scenario_run_summary(static_result, static_slo),
    }

    exit_slo = static_slo
    if not args.no_autoscaler:
        auto_sim, trace, failures = prepare_scenario_run(
            preset, seed=args.seed, scale=args.scale, autoscaled=True, model=model
        )
        if args.interval is not None:
            auto_sim.autoscaler.config = replace(auto_sim.autoscaler.config, interval_s=args.interval)
        auto_result = auto_sim.run(trace, failures=failures)
        auto_slo = auto_result.slo_report(model=model)
        payload["autoscaled"] = _scenario_run_summary(auto_result, auto_slo)
        payload["machine_hours_saved"] = round(
            payload["static"]["machine_hours"] - payload["autoscaled"]["machine_hours"], 3
        )
        if args.timeline or args.json:
            payload["timeline"] = auto_result.autoscaler.timeline_as_dicts()
        exit_slo = auto_slo

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"scenario {preset.name}: {preset.description}")
        print(f"  trace: {len(trace)} requests over {preset.duration_s:g}s on {payload['design']}")
        for label in ("static", "autoscaled"):
            if label not in payload:
                continue
            run = payload[label]
            print(
                f"  {label:<10} slo={'PASS' if run['slo_satisfied'] else 'FAIL'} "
                f"({run['slo_violations']} violations, tbt samples={run['slo_samples'].get('tbt', 0)}) "
                f"completion={run['completion_rate']:.3f} machine-hours={run['machine_hours']:.3f}"
            )
        if "machine_hours_saved" in payload:
            saved = payload["machine_hours_saved"]
            static_hours = payload["static"]["machine_hours"]
            fraction = saved / static_hours if static_hours else 0.0
            print(
                f"  machine-hours saved vs static: {saved:.3f} ({fraction:.1%}), "
                f"repurposes={payload['autoscaled'].get('repurposes', 0)}, "
                f"autoscaler actions={payload['autoscaled'].get('autoscaler_actions', 0)}"
            )
        if args.timeline and "timeline" in payload:
            for event in payload["timeline"]:
                print(
                    f"    t={event['time_s']:>8.2f}s {event['action']:<9} {event['machine']:<10} "
                    f"{event['from']}->{event['to']}  ({event['reason']})"
                )
    return 0 if exit_slo.satisfied else 2


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet_sweep import fleet_run_summary, prepare_fleet_run

    preset = get_scenario(args.preset)
    model = get_model(args.model)
    chaos_name = preset.chaos if args.chaos is None else args.chaos
    if chaos_name == "none":
        chaos_name = None
    reliability_kwargs = dict(
        retry_override=args.retry,
        retry_seed=args.retry_seed,
        hedge_override=args.hedge,
        deadline_ms=args.deadline_ms,
        reliability_off=args.no_reliability,
    )
    observe = args.trace_out is not None or args.metrics_out is not None

    def _arm_observability(fleet):
        # Imported lazily, mirroring FleetSimulation.observe: plain runs
        # never load the observability plane.
        from repro.obs import ObservabilityConfig

        return fleet.observe(
            ObservabilityConfig(
                trace_path=args.trace_out,
                metrics_path=args.metrics_out,
                interval_s=args.metrics_interval,
            )
        )

    static_fleet, trace, failures = prepare_fleet_run(
        preset, clusters=args.clusters, burst_clusters=args.burst_clusters, seed=args.seed,
        scale=args.scale, policy=args.policy, burst=False, model=model,
        chaos=args.chaos, fault_seed=args.fault_seed, parallel=args.parallel,
        epoch_s=args.epoch_s, **reliability_kwargs,
    )
    plane = _arm_observability(static_fleet) if observe and args.no_burst else None
    static_result = static_fleet.run(trace, failures=failures)
    static_summary = fleet_run_summary(static_result)
    payload = {
        "preset": preset.name,
        "description": preset.description,
        # Provenance: everything needed to reproduce the run from the
        # artifact alone.
        "seed": args.seed,
        "scale": args.scale,
        "model": model.name,
        "trace": trace.name,
        "requests": len(trace),
        "tenants": list(trace.tenants()),
        "design": static_fleet.clusters[0].design.label,
        "clusters": args.clusters,
        "burst_clusters": args.burst_clusters,
        "policy": args.policy,
        "chaos": chaos_name,
        "fault_seed": None if static_fleet.faults is None else static_fleet.faults.seed,
        "retry": None
        if static_fleet.lifecycle is None or static_fleet.lifecycle.retry is None
        else static_fleet.lifecycle.retry.max_retries,
        "retry_seed": None
        if static_fleet.lifecycle is None or static_fleet.lifecycle.retry is None
        else static_fleet.lifecycle.retry.seed,
        "hedge": static_fleet.lifecycle is not None
        and static_fleet.lifecycle.hedge is not None,
        "deadline_ms": args.deadline_ms,
        # Execution-mode provenance: None without --parallel, otherwise the
        # effective worker/shard counts (or the serial-fallback reasons).
        # Deterministic content only — byte-compared artifacts stay stable.
        "parallel": static_fleet.parallel_info,
        "static": static_summary,
    }

    exit_report = static_summary["tenant_slo"]
    if not args.no_burst:
        burst_fleet, trace, failures = prepare_fleet_run(
            preset, clusters=args.clusters, burst_clusters=args.burst_clusters, seed=args.seed,
            scale=args.scale, policy=args.policy, burst=True, model=model,
            chaos=args.chaos, fault_seed=args.fault_seed, parallel=args.parallel,
            epoch_s=args.epoch_s, **reliability_kwargs,
        )
        if observe:
            plane = _arm_observability(burst_fleet)
        burst_result = burst_fleet.run(trace, failures=failures)
        burst_summary = fleet_run_summary(burst_result)
        payload["burst"] = burst_summary
        payload["burst_parallel"] = burst_fleet.parallel_info
        payload["machine_hours_saved"] = round(
            static_summary["machine_hours"] - burst_summary["machine_hours"], 3
        )
        if args.timeline or args.json:
            payload["timeline"] = burst_result.provisioner.timeline_as_dicts()
        exit_report = burst_summary["tenant_slo"]

    if plane is not None:
        # Self-describing artifacts: the paths, the ticker cadence, the span
        # count, and the span census land in the --json payload.
        payload["observability"] = plane.export()

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"fleet {preset.name}: {preset.description}")
        print(
            f"  trace: {len(trace)} requests over {preset.duration_s:g}s, "
            f"tenants: {', '.join(payload['tenants'])}"
        )
        print(
            f"  fleet: {args.clusters} active + {args.burst_clusters} standby x "
            f"{payload['design']} ({args.policy} routing)"
        )
        if chaos_name is not None:
            print(f"  chaos: {chaos_name} (fault seed {payload['fault_seed']})")
        if payload["parallel"] is not None:
            info = payload["parallel"]
            if info["mode"] == "parallel":
                print(
                    f"  parallel: {info['shards']} shards / {info['workers']} workers, "
                    f"{info['epochs']} epochs (bit-identical to serial)"
                )
            else:
                print(f"  parallel: serial fallback — {'; '.join(info['reasons'])}")
        if "observability" in payload:
            obs = payload["observability"]
            print(
                f"  observability: {obs['span_count']} spans, "
                f"{obs['metric_samples']} metric samples -> "
                f"{obs['trace_path'] or '-'} / {obs['metrics_path'] or '-'}"
            )
        for label in ("static", "burst"):
            if label not in payload:
                continue
            run = payload[label]
            slo = run["tenant_slo"]
            tenant_bits = ", ".join(
                f"{tenant}={'PASS' if entry['satisfied'] else 'FAIL'}"
                for tenant, entry in sorted(slo["tenants"].items())
            )
            print(
                f"  {label:<7} per-tenant SLO: {tenant_bits} "
                f"(fleet {'PASS' if slo['fleet']['satisfied'] else 'FAIL'}) "
                f"completion={run['completion_rate']:.3f} "
                f"machine-hours={run['machine_hours']:.3f} cost=${run['cost']:.0f}"
            )
            if "faults" in run:
                fired = sum(run["faults"]["fired"].values())
                shed = sum(run.get("requests_shed", {}).values())
                print(
                    f"  {'':<7} chaos: {fired} injections fired, "
                    f"bans={run.get('bans_issued', 0)}, shed={shed} "
                    f"({', '.join(f'{t}={n}' for t, n in sorted(run.get('requests_shed', {}).items())) or 'none'})"
                )
            if "reliability" in run:
                rel = run["reliability"]
                expired = sum(run.get("requests_expired", {}).values())
                print(
                    f"  {'':<7} lifecycle: retries={rel['retries_fired']} "
                    f"hedges={rel['hedges_launched']} (won {rel['hedges_won']}, "
                    f"wasted {rel['hedge_wasted_tokens']} tok), "
                    f"degraded={run.get('requests_degraded', 0)}, expired={expired}"
                )
        if "machine_hours_saved" in payload:
            saved = payload["machine_hours_saved"]
            static_hours = payload["static"]["machine_hours"]
            fraction = saved / static_hours if static_hours else 0.0
            print(
                f"  machine-hours saved vs static: {saved:.3f} ({fraction:.1%}), "
                f"bursts={payload['burst'].get('bursts', 0)}, "
                f"provisioner actions={payload['burst'].get('provisioner_actions', 0)}"
            )
        if args.timeline and "timeline" in payload:
            for event in payload["timeline"]:
                print(
                    f"    t={event['time_s']:>8.2f}s {event['action']:<10} "
                    f"{event['cluster']:<10} ({event['reason']})"
                )
    return 0 if exit_report["satisfied"] else 2


def _cmd_provision(args: argparse.Namespace) -> int:
    estimate_prompt, estimate_token = estimate_pool_sizes(args.design, rate_rps=args.rate, workload=args.workload)
    provisioner = Provisioner(workload=args.workload, trace_duration_s=args.duration, seed=args.seed)
    prompt_counts = range(max(1, estimate_prompt - args.spread), estimate_prompt + args.spread + 1)
    token_counts = (
        range(max(1, estimate_token - args.spread), estimate_token + args.spread + 1)
        if not args.design.startswith("Baseline")
        else (0,)
    )
    goal = OptimizationGoal.COST if args.goal == "cost" else OptimizationGoal.POWER
    result = provisioner.size_for_throughput(
        args.design, target_rps=args.rate, prompt_counts=prompt_counts, token_counts=token_counts, goal=goal
    )
    print(f"analytical estimate: {estimate_prompt} prompt, {estimate_token} token machines")
    print(f"{'config':<12}{'$/hr':>10}{'kW':>8}{'feasible':>10}")
    for candidate in result.candidates:
        design = candidate.design
        label = f"{design.num_prompt}P,{design.num_token}T"
        print(f"{label:<12}{candidate.cost_per_hour:>10.0f}{candidate.provisioned_power_kw:>8.1f}"
              f"{'yes' if candidate.feasible else 'no':>10}")
    if result.best is None:
        print("no feasible configuration in the swept range")
        return 1
    best = result.best.design
    print(f"optimal ({args.goal}): {best.num_prompt} prompt + {best.num_token} token machines "
          f"= {result.best.cost_per_hour:.0f} $/hr, {result.best.provisioned_power_kw:.1f} kW")
    return 0


def _cmd_designs(args: argparse.Namespace) -> int:
    print(f"{'family':<18}{'machines':>10}{'$/hr':>10}{'kW':>8}")
    for family in _DESIGN_FAMILIES:
        design = _build_design(family, args.prompt, args.token)
        print(f"{family:<18}{design.num_machines:>10}{design.cost_per_hour:>10.1f}"
              f"{design.provisioned_power_kw:>8.2f}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: linting is dev tooling, simulation runs must not pay
    # for (or depend on) the analysis package.
    from repro.analysis import simlint

    argv = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.extend(["--write-baseline", args.write_baseline])
    if args.strict_baseline:
        argv.append("--strict-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    return simlint.main(argv)


_COMMANDS = {
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "scenario": _cmd_scenario,
    "fleet": _cmd_fleet,
    "provision": _cmd_provision,
    "designs": _cmd_designs,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
