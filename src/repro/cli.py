"""Command-line interface for the Splitwise reproduction.

Four subcommands cover the common workflows without writing Python:

* ``repro-sim trace`` — generate a synthetic trace (Azure-like distributions)
  and write it to CSV.
* ``repro-sim simulate`` — run a trace (or a freshly generated one) through a
  cluster design and print the latency/SLO summary.
* ``repro-sim provision`` — sweep machine counts for a design family and
  report the cost-optimal configuration for a target load.
* ``repro-sim designs`` — list the built-in cluster designs with their cost
  and power at a given size.

Examples::

    repro-sim trace --workload coding --rate 5 --duration 120 -o coding.csv
    repro-sim simulate --design Splitwise-HA --prompt 2 --token 4 --rate 8
    repro-sim provision --design Splitwise-HH --workload coding --rate 10
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.cluster import simulate_design
from repro.core.designs import get_design_family
from repro.core.provisioning import OptimizationGoal, Provisioner, estimate_pool_sizes
from repro.models.llm import get_model
from repro.workload.generator import generate_trace
from repro.workload.trace import Trace

_DESIGN_FAMILIES = (
    "Baseline-A100",
    "Baseline-H100",
    "Splitwise-AA",
    "Splitwise-HH",
    "Splitwise-HA",
    "Splitwise-HHcap",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-sim`` entry point."""
    parser = argparse.ArgumentParser(prog="repro-sim", description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace = subparsers.add_parser("trace", help="generate a synthetic request trace")
    trace.add_argument("--workload", choices=("coding", "conversation"), default="conversation")
    trace.add_argument("--rate", type=float, default=2.0, help="requests per second")
    trace.add_argument("--duration", type=float, default=60.0, help="trace length in seconds")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("-o", "--output", required=True, help="CSV file to write")

    simulate = subparsers.add_parser("simulate", help="simulate a cluster design on a trace")
    simulate.add_argument("--design", choices=_DESIGN_FAMILIES, default="Splitwise-HH")
    simulate.add_argument("--prompt", type=int, default=2, help="prompt machines (or total for baselines)")
    simulate.add_argument("--token", type=int, default=1, help="token machines (ignored for baselines)")
    simulate.add_argument("--model", default="Llama2-70B", help="LLM to serve")
    simulate.add_argument("--trace", help="CSV trace to replay (generated if omitted)")
    simulate.add_argument("--workload", choices=("coding", "conversation"), default="conversation")
    simulate.add_argument("--rate", type=float, default=2.0)
    simulate.add_argument("--duration", type=float, default=60.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--json", action="store_true", help="print machine-readable JSON")

    provision = subparsers.add_parser("provision", help="search machine counts for a target load")
    provision.add_argument("--design", choices=_DESIGN_FAMILIES, default="Splitwise-HH")
    provision.add_argument("--workload", choices=("coding", "conversation"), default="coding")
    provision.add_argument("--rate", type=float, required=True, help="target requests per second")
    provision.add_argument("--goal", choices=("cost", "power"), default="cost")
    provision.add_argument("--duration", type=float, default=45.0, help="evaluation trace length")
    provision.add_argument("--spread", type=int, default=2, help="sweep +/- this many machines around the estimate")
    provision.add_argument("--seed", type=int, default=0)

    designs = subparsers.add_parser("designs", help="list cluster designs with cost and power")
    designs.add_argument("--prompt", type=int, default=2)
    designs.add_argument("--token", type=int, default=1)

    return parser


def _build_design(family: str, prompt: int, token: int):
    factory = get_design_family(family)
    if family.startswith("Baseline"):
        return factory(prompt + token if token else prompt)
    return factory(prompt, token)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = generate_trace(args.workload, rate_rps=args.rate, duration_s=args.duration, seed=args.seed)
    path = trace.to_csv(args.output)
    print(f"wrote {len(trace)} requests ({args.workload}, {args.rate:g} RPS, {args.duration:g}s) to {path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    design = _build_design(args.design, args.prompt, args.token)
    model = get_model(args.model)
    if args.trace:
        trace = Trace.from_csv(args.trace)
    else:
        trace = generate_trace(args.workload, rate_rps=args.rate, duration_s=args.duration, seed=args.seed)
    result = simulate_design(design, trace, model=model)
    metrics = result.request_metrics()
    slo = result.slo_report(model=model)
    summary = {
        "design": design.label,
        "model": model.name,
        "trace": trace.name,
        "requests": len(trace),
        "completion_rate": round(result.completion_rate, 4),
        "throughput_rps": round(metrics.throughput_rps, 3),
        "ttft_p50_ms": round(metrics.ttft.p50 * 1e3, 1),
        "ttft_p90_ms": round(metrics.ttft.p90 * 1e3, 1),
        "tbt_p50_ms": round(metrics.tbt.p50 * 1e3, 1),
        "tbt_p90_ms": round(metrics.tbt.p90 * 1e3, 1),
        "e2e_p50_s": round(metrics.e2e.p50, 2),
        "e2e_p90_s": round(metrics.e2e.p90, 2),
        "energy_wh": round(result.total_energy_wh(), 1),
        "cost_per_hour": round(design.cost_per_hour, 1),
        "power_kw": round(design.provisioned_power_kw, 2),
        "slo_satisfied": slo.satisfied,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        width = max(len(key) for key in summary)
        for key, value in summary.items():
            print(f"{key:<{width}}  {value}")
    return 0 if slo.satisfied else 2


def _cmd_provision(args: argparse.Namespace) -> int:
    estimate_prompt, estimate_token = estimate_pool_sizes(args.design, rate_rps=args.rate, workload=args.workload)
    provisioner = Provisioner(workload=args.workload, trace_duration_s=args.duration, seed=args.seed)
    prompt_counts = range(max(1, estimate_prompt - args.spread), estimate_prompt + args.spread + 1)
    token_counts = (
        range(max(1, estimate_token - args.spread), estimate_token + args.spread + 1)
        if not args.design.startswith("Baseline")
        else (0,)
    )
    goal = OptimizationGoal.COST if args.goal == "cost" else OptimizationGoal.POWER
    result = provisioner.size_for_throughput(
        args.design, target_rps=args.rate, prompt_counts=prompt_counts, token_counts=token_counts, goal=goal
    )
    print(f"analytical estimate: {estimate_prompt} prompt, {estimate_token} token machines")
    print(f"{'config':<12}{'$/hr':>10}{'kW':>8}{'feasible':>10}")
    for candidate in result.candidates:
        design = candidate.design
        label = f"{design.num_prompt}P,{design.num_token}T"
        print(f"{label:<12}{candidate.cost_per_hour:>10.0f}{candidate.provisioned_power_kw:>8.1f}"
              f"{'yes' if candidate.feasible else 'no':>10}")
    if result.best is None:
        print("no feasible configuration in the swept range")
        return 1
    best = result.best.design
    print(f"optimal ({args.goal}): {best.num_prompt} prompt + {best.num_token} token machines "
          f"= {result.best.cost_per_hour:.0f} $/hr, {result.best.provisioned_power_kw:.1f} kW")
    return 0


def _cmd_designs(args: argparse.Namespace) -> int:
    print(f"{'family':<18}{'machines':>10}{'$/hr':>10}{'kW':>8}")
    for family in _DESIGN_FAMILIES:
        design = _build_design(family, args.prompt, args.token)
        print(f"{family:<18}{design.num_machines:>10}{design.cost_per_hour:>10.1f}"
              f"{design.provisioned_power_kw:>8.2f}")
    return 0


_COMMANDS = {
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "provision": _cmd_provision,
    "designs": _cmd_designs,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
