"""Named chaos presets: fault plan + reliability + admission + lifecycle bundles.

A chaos preset is the reliability analogue of a scenario preset: one name
selects a coherent bundle of failure processes, router reliability knobs,
admission control, and request-lifecycle policies (retry / hedge / deadline /
degraded service), so the CLI (``repro-sim fleet --chaos <name>``), the CI
chaos- and reliability-smoke jobs, and the tests all exercise the identical
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlanConfig
from repro.fleet.reliability import DeadlineConfig, DegradedConfig, HedgeConfig, RetryPolicy
from repro.fleet.router import AdmissionConfig, ReliabilityConfig


@dataclass(frozen=True)
class ChaosPreset:
    """One named chaos configuration.

    Attributes:
        name: Preset name (CLI ``--chaos`` argument).
        description: One-line summary for ``--help`` and docs.
        faults: The stochastic failure processes to arm.
        reliability: Router reliability feedback (``None`` = off).
        admission: Per-tenant admission control (``None`` = off).
        retry: Request retry policy (``None`` = local restarts, as before).
        hedge: Tail-latency hedging config (``None`` = off).
        deadlines: Per-tenant deadline config (``None`` = no deadlines).
        degraded: Degraded-service config (``None`` = shed means dropped).
    """

    name: str
    description: str
    faults: FaultPlanConfig
    reliability: ReliabilityConfig | None = None
    admission: AdmissionConfig | None = None
    retry: RetryPolicy | None = None
    hedge: HedgeConfig | None = None
    deadlines: DeadlineConfig | None = None
    degraded: DegradedConfig | None = None


CHAOS_PRESETS: dict[str, ChaosPreset] = {
    "machine-churn": ChaosPreset(
        name="machine-churn",
        description=(
            "Stochastic machine failures with repair (MTBF/MTTR) plus router "
            "bans and budgeted cross-cluster retries"
        ),
        faults=FaultPlanConfig(machine_mtbf_s=60.0, machine_mttr_s=10.0),
        reliability=ReliabilityConfig(),
        # Churn displaces work often; a generous budget with short backoff
        # keeps displaced requests flowing to surviving clusters instead of
        # re-queueing on the one that just lost a machine.
        retry=RetryPolicy(max_retries=6, backoff_base_s=0.1, backoff_max_s=1.0),
    ),
    "degraded-network": ChaosPreset(
        name="degraded-network",
        description=(
            "KV-transfer brown-outs and persistent stragglers, no hard "
            "failures; hedging and loose deadlines cut the straggler tail"
        ),
        faults=FaultPlanConfig(
            straggler_interval_s=180.0,
            straggler_slowdown=1.6,
            kv_degradation_interval_s=60.0,
            kv_degradation_duration_s=15.0,
            kv_degradation_factor=3.0,
        ),
        reliability=ReliabilityConfig(),
        # Stragglers and brown-outs stretch the tail without killing work:
        # hedge stuck starts onto a healthy cluster, and expire only the
        # truly wedged (deadlines far beyond any healthy completion).
        hedge=HedgeConfig(p99_multiplier=1.5, min_delay_s=1.0, max_delay_s=30.0),
        deadlines=DeadlineConfig(ttft_s=120.0, e2e_s=600.0),
        degraded=DegradedConfig(max_output_tokens=32, on_shed=True, on_ttft_deadline=False),
    ),
    "failure-storm": ChaosPreset(
        name="failure-storm",
        description=(
            "Everything at once: machine churn, rack outages, stragglers, "
            "KV brown-outs, spot revocation, bans, admission control, "
            "retries, hedging, deadlines, and degraded service"
        ),
        faults=FaultPlanConfig(
            machine_mtbf_s=45.0,
            machine_mttr_s=8.0,
            outage_interval_s=150.0,
            outage_duration_s=12.0,
            straggler_interval_s=180.0,
            straggler_slowdown=1.6,
            kv_degradation_interval_s=90.0,
            kv_degradation_duration_s=15.0,
            kv_degradation_factor=3.0,
            revocation_mtbf_s=90.0,
        ),
        reliability=ReliabilityConfig(
            window=32,
            ban_threshold=0.4,
            min_observations=12,
            cooldown_s=20.0,
            probation_requests=10,
            probation_threshold=0.4,
        ),
        admission=AdmissionConfig(
            max_outstanding=64,
            tenant_priorities={"conversation": 2},
            shed_headroom=0.5,
        ),
        # The goodput lever under a storm is serving, not dropping: a deep
        # retry budget with fast backoff re-lands displaced work, hedging
        # rescues stuck starts, degraded service converts shed traffic into
        # short answers, and deadlines stay loose enough that only requests
        # the storm has genuinely wedged expire.
        retry=RetryPolicy(max_retries=8, backoff_base_s=0.1, backoff_max_s=1.0),
        hedge=HedgeConfig(p99_multiplier=2.0, min_delay_s=2.0, max_delay_s=30.0),
        deadlines=DeadlineConfig(ttft_s=120.0, e2e_s=300.0),
        degraded=DegradedConfig(max_output_tokens=32, on_shed=True, on_ttft_deadline=False),
    ),
}


def get_chaos_preset(name: str) -> ChaosPreset:
    """Look up a chaos preset by name.

    Raises:
        KeyError: for an unknown name, listing the known presets.
    """
    try:
        return CHAOS_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(f"unknown chaos preset {name!r}; known presets: {known}") from None
