"""Named chaos presets: fault plan + reliability + admission bundles.

A chaos preset is the reliability analogue of a scenario preset: one name
selects a coherent bundle of failure processes, router reliability knobs,
and admission control, so the CLI (``repro-sim fleet --chaos <name>``), the
CI chaos-smoke job, and the tests all exercise the identical configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlanConfig
from repro.fleet.router import AdmissionConfig, ReliabilityConfig


@dataclass(frozen=True)
class ChaosPreset:
    """One named chaos configuration.

    Attributes:
        name: Preset name (CLI ``--chaos`` argument).
        description: One-line summary for ``--help`` and docs.
        faults: The stochastic failure processes to arm.
        reliability: Router reliability feedback (``None`` = off).
        admission: Per-tenant admission control (``None`` = off).
    """

    name: str
    description: str
    faults: FaultPlanConfig
    reliability: ReliabilityConfig | None = None
    admission: AdmissionConfig | None = None


CHAOS_PRESETS: dict[str, ChaosPreset] = {
    "machine-churn": ChaosPreset(
        name="machine-churn",
        description="Stochastic machine failures with repair (MTBF/MTTR) plus router bans",
        faults=FaultPlanConfig(machine_mtbf_s=60.0, machine_mttr_s=10.0),
        reliability=ReliabilityConfig(),
    ),
    "degraded-network": ChaosPreset(
        name="degraded-network",
        description="KV-transfer brown-outs and persistent stragglers, no hard failures",
        faults=FaultPlanConfig(
            straggler_interval_s=180.0,
            straggler_slowdown=1.6,
            kv_degradation_interval_s=60.0,
            kv_degradation_duration_s=15.0,
            kv_degradation_factor=3.0,
        ),
        reliability=ReliabilityConfig(),
    ),
    "failure-storm": ChaosPreset(
        name="failure-storm",
        description=(
            "Everything at once: machine churn, rack outages, stragglers, "
            "KV brown-outs, spot revocation, bans, and admission control"
        ),
        faults=FaultPlanConfig(
            machine_mtbf_s=45.0,
            machine_mttr_s=8.0,
            outage_interval_s=150.0,
            outage_duration_s=12.0,
            straggler_interval_s=180.0,
            straggler_slowdown=1.6,
            kv_degradation_interval_s=90.0,
            kv_degradation_duration_s=15.0,
            kv_degradation_factor=3.0,
            revocation_mtbf_s=90.0,
        ),
        reliability=ReliabilityConfig(
            window=32,
            ban_threshold=0.4,
            min_observations=12,
            cooldown_s=20.0,
            probation_requests=10,
            probation_threshold=0.4,
        ),
        admission=AdmissionConfig(
            max_outstanding=64,
            tenant_priorities={"conversation": 2},
            shed_headroom=0.5,
        ),
    ),
}


def get_chaos_preset(name: str) -> ChaosPreset:
    """Look up a chaos preset by name.

    Raises:
        KeyError: for an unknown name, listing the known presets.
    """
    try:
        return CHAOS_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(CHAOS_PRESETS))
        raise KeyError(f"unknown chaos preset {name!r}; known presets: {known}") from None
