"""Replays a precompiled fault plan into a running fleet simulation.

The :class:`FaultInjector` is the bridge between the pure fault plan
(:mod:`repro.faults.plan`) and the discrete-event fleet: at arm time it
derives the fleet's :class:`~repro.faults.plan.FaultTopology`, compiles the
plan, and schedules every injection as an ordinary priority-1 engine event —
the same priority explicit scenario ``failure_points`` use, so injections
interleave with iteration finishes and arrivals exactly the way one-shot
failures always have.

Injections carry **deterministic guards** evaluated at fire time: a
machine-fail against the last serviceable machine of a cluster is skipped
(the simulator models degraded service, not a dead fleet), an outage against
the only serviceable cluster is skipped, a recover against a healthy machine
is a no-op, and so on.  The guards read only simulation state that is
identical across execution regimes, so a plan replays bit-identically with
fast-forward on or off.  Skips are counted per kind and reported in
:meth:`FaultInjector.snapshot` alongside the fired counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import (
    FaultPlanConfig,
    FaultTopology,
    Injection,
    compile_fault_plan,
    plan_counts,
)
from repro.fleet.provisioner import ClusterState
from repro.simulation.events import FAULT_EVENT_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import FleetCluster, FleetSimulation


class FaultInjector:
    """Arms a fault plan against a fleet and dispatches its injections.

    Args:
        fleet: The fleet simulation to inject into.
        config: The fault-plan knobs (including the dedicated fault seed).
    """

    def __init__(self, fleet: "FleetSimulation", config: FaultPlanConfig) -> None:
        self.fleet = fleet
        self.config = config
        self.plan: tuple[Injection, ...] = ()
        self.fired: dict[str, int] = {}
        self.skipped: dict[str, int] = {}
        self._cluster_by_name: dict[str, "FleetCluster"] = {}
        self._cluster_of_machine: dict[str, "FleetCluster"] = {}

    def arm(self, duration_s: float) -> tuple[Injection, ...]:
        """Compile the plan for this fleet and schedule every injection.

        Burst (revocable) capacity is identified by initial cluster state:
        any cluster not ACTIVE at arm time is spot capacity the provisioner
        may rent — and the fault plane may revoke.
        """
        clusters = list(self.fleet.clusters)
        self._cluster_by_name = {cluster.name: cluster for cluster in clusters}
        machines: dict[str, tuple[str, ...]] = {}
        for cluster in clusters:
            names = tuple(machine.name for machine in cluster.scheduler.machines)
            machines[cluster.name] = names
            for name in names:
                self._cluster_of_machine[name] = cluster
        topology = FaultTopology(
            machines=machines,
            burst_clusters=tuple(
                cluster.name for cluster in clusters if cluster.state is not ClusterState.ACTIVE
            ),
        )
        self.plan = compile_fault_plan(self.config, topology, duration_s)
        engine = self.fleet.engine
        for injection in self.plan:
            engine.schedule_at(
                injection.time_s,
                lambda inj=injection: self._fire(inj),
                priority=FAULT_EVENT_PRIORITY,
                tag=f"fault:{injection.kind}:{injection.target}",
            )
        return self.plan

    # -- dispatch -----------------------------------------------------------------------

    def _fire(self, injection: Injection) -> None:
        handler = self._HANDLERS[injection.kind]
        fired = handler(self, injection)
        counts = self.fired if fired else self.skipped
        counts[injection.kind] = counts.get(injection.kind, 0) + 1
        if self.fleet.obs is not None:
            self.fleet.obs.note_injection(
                injection.kind, injection.target, fired, self.fleet.engine.now
            )

    def _serviceable(self, exclude: "FleetCluster | None" = None) -> int:
        """Clusters currently able to take traffic (routable and available)."""
        return sum(
            1
            for cluster in self.fleet.clusters
            if cluster is not exclude and cluster.routable and cluster.available
        )

    def _fire_machine_fail(self, injection: Injection) -> bool:
        cluster = self._cluster_of_machine[injection.target]
        if not cluster.available:
            return False  # already down wholesale (outage in progress)
        scheduler = cluster.scheduler
        machine = scheduler.find_machine(injection.target)
        if machine.failed:
            return False
        if len(scheduler.machines) <= 1:
            return False  # never kill a cluster's last machine from this process
        scheduler.fail_machine(machine)
        return True

    def _fire_machine_recover(self, injection: Injection) -> bool:
        cluster = self._cluster_of_machine[injection.target]
        if not cluster.available:
            return False  # the outage's end will recover the whole cluster
        machine = cluster.scheduler.find_machine(injection.target)
        if not machine.failed:
            return False
        cluster.scheduler.recover_machine(machine)
        return True

    def _fire_outage_start(self, injection: Injection) -> bool:
        cluster = self._cluster_by_name[injection.target]
        if not cluster.available:
            return False
        if self._serviceable(exclude=cluster) < 1:
            return False  # nowhere to evacuate; keep the fleet alive
        self.fleet.begin_outage(cluster)
        return True

    def _fire_outage_end(self, injection: Injection) -> bool:
        cluster = self._cluster_by_name[injection.target]
        if cluster.available:
            return False
        self.fleet.end_outage(cluster)
        return True

    def _fire_straggler_start(self, injection: Injection) -> bool:
        cluster = self._cluster_of_machine[injection.target]
        machine = cluster.scheduler.find_machine(injection.target)
        machine.set_performance_slowdown(injection.factor)
        return True

    def _fire_straggler_end(self, injection: Injection) -> bool:
        cluster = self._cluster_of_machine[injection.target]
        machine = cluster.scheduler.find_machine(injection.target)
        machine.set_performance_slowdown(1.0)
        return True

    def _fire_kv_degrade_start(self, injection: Injection) -> bool:
        cluster = self._cluster_by_name[injection.target]
        cluster.scheduler.set_kv_degradation(injection.factor)
        return True

    def _fire_kv_degrade_end(self, injection: Injection) -> bool:
        cluster = self._cluster_by_name[injection.target]
        cluster.scheduler.set_kv_degradation(1.0)
        return True

    def _fire_revoke(self, injection: Injection) -> bool:
        cluster = self._cluster_by_name[injection.target]
        if cluster.state not in (ClusterState.ACTIVE, ClusterState.STARTING):
            return False  # nothing rented; nothing to revoke
        if self._serviceable(exclude=cluster) < 1:
            return False
        self.fleet.revoke_cluster(cluster)
        return True

    _HANDLERS = {
        "machine-fail": _fire_machine_fail,
        "machine-recover": _fire_machine_recover,
        "outage-start": _fire_outage_start,
        "outage-end": _fire_outage_end,
        "straggler-start": _fire_straggler_start,
        "straggler-end": _fire_straggler_end,
        "kv-degrade-start": _fire_kv_degrade_start,
        "kv-degrade-end": _fire_kv_degrade_end,
        "revoke": _fire_revoke,
    }

    # -- reporting ----------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly fault provenance: seed, planned/fired/skipped counts."""
        return {
            "seed": self.config.seed,
            "planned": plan_counts(self.plan),
            "fired": dict(sorted(self.fired.items())),
            "skipped": dict(sorted(self.skipped.items())),
        }
