"""Seeded, composable fault injection for cluster and fleet simulations.

See :mod:`repro.faults.plan` for the compile-time fault model,
:mod:`repro.faults.injector` for the replay machinery, and
:mod:`repro.faults.presets` for the named chaos bundles.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    INJECTION_KINDS,
    FaultPlanConfig,
    FaultTopology,
    Injection,
    compile_fault_plan,
    plan_counts,
)
from repro.faults.presets import CHAOS_PRESETS, ChaosPreset, get_chaos_preset

__all__ = [
    "CHAOS_PRESETS",
    "ChaosPreset",
    "FaultInjector",
    "FaultPlanConfig",
    "FaultTopology",
    "INJECTION_KINDS",
    "Injection",
    "compile_fault_plan",
    "get_chaos_preset",
    "plan_counts",
]
