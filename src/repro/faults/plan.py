"""Seeded, composable fault-injection plans.

The fault plane separates *what goes wrong* from *when the simulator learns
about it*.  Every stochastic choice — which machine fails, when it recovers,
which rack loses power, which burst cluster gets its spot capacity revoked —
is made **here, at compile time**, from one dedicated fault seed.  The
:class:`~repro.faults.injector.FaultInjector` merely replays the precompiled
timeline as ordinary engine events, so:

* runs are bit-reproducible under a fixed seed (no random draw ever happens
  inside the event loop, where execution order could perturb the stream);
* the plan is independent of the execution regime — fast-forward on or off
  sees the identical injection times, exactly like the explicit
  ``failure_points`` a scenario preset declares;
* plans are inspectable and testable without running a simulation.

Five failure processes compose freely (any subset may be enabled):

``machine-fail`` / ``machine-recover``
    Per-machine alternating renewal process: exponential time-to-failure
    (``machine_mtbf_s``) followed by exponential repair (``machine_mttr_s``).
    Unlike the one-shot ``failure_points``, failed machines come *back*.
``outage-start`` / ``outage-end``
    Correlated failure domains: a whole cluster (rack/zone) drops cold at
    once and its in-flight work must evacuate to the survivors.
``straggler-start`` / ``straggler-end``
    Persistent slow machines: a multiplicative latency factor applied
    through the performance model — distinct from power caps, and surviving
    fail/recover cycles (slow hardware stays slow).
``kv-degrade-start`` / ``kv-degrade-end``
    Interconnect brown-outs: a window during which every *newly scheduled*
    KV-cache transfer in a cluster takes ``kv_degradation_factor`` times
    longer (in-flight transfers keep their already-committed latency).
``revoke``
    Spot-capacity revocation: a burst cluster is ripped away mid-run even
    while ACTIVE, evacuating its work to the rest of the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

INJECTION_KINDS = (
    "machine-fail",
    "machine-recover",
    "outage-start",
    "outage-end",
    "straggler-start",
    "straggler-end",
    "kv-degrade-start",
    "kv-degrade-end",
    "revoke",
)

_MACHINE_KINDS = frozenset(
    {"machine-fail", "machine-recover", "straggler-start", "straggler-end"}
)


@dataclass(frozen=True, slots=True)
class Injection:
    """One precompiled fault event.

    Attributes:
        time_s: Injection time in seconds from trace start.
        kind: One of :data:`INJECTION_KINDS`.
        target: Machine name (``cluster-0/prompt-1``) for machine-scoped
            kinds, cluster name (``cluster-0``) otherwise.
        factor: Multiplicative severity for straggler / KV-degradation
            kinds (ignored by the others).
    """

    time_s: float
    kind: str
    target: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in INJECTION_KINDS:
            raise ValueError(f"unknown injection kind {self.kind!r}; known: {INJECTION_KINDS}")
        if self.time_s < 0:
            raise ValueError(f"injection time must be >= 0, got {self.time_s}")

    @property
    def is_machine_scoped(self) -> bool:
        return self.kind in _MACHINE_KINDS


@dataclass(frozen=True)
class FaultTopology:
    """The fleet shape a fault plan is compiled against.

    Attributes:
        machines: Cluster name -> that cluster's machine names, in the
            cluster's own deterministic construction order.
        burst_clusters: Clusters holding revocable (spot) capacity —
            only these can receive ``revoke`` injections.
    """

    machines: Mapping[str, tuple[str, ...]]
    burst_clusters: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = [name for name in self.burst_clusters if name not in self.machines]
        if unknown:
            raise ValueError(
                f"burst clusters {unknown} not in topology; known: {sorted(self.machines)}"
            )


@dataclass(frozen=True)
class FaultPlanConfig:
    """Knobs for the five stochastic failure processes.

    Every process is disabled until its rate/interval knob is set, so a
    default-constructed config compiles to an empty plan and costs nothing.

    Attributes:
        seed: Dedicated fault seed — independent of the trace seed, so the
            same workload can be replayed under different failure draws.
        machine_mtbf_s: Mean time between failures per machine (exponential).
        machine_mttr_s: Mean time to repair per failed machine (exponential;
            defaults to a quarter of the MTBF when failures are enabled).
        outage_interval_s: Mean gap between correlated whole-cluster outages.
        outage_duration_s: Fixed outage length.
        straggler_interval_s: Mean onset time of a persistent straggler per
            machine (one onset per machine at most).
        straggler_duration_s: Optional straggler length; ``None`` means the
            machine stays slow for the rest of the run.
        straggler_slowdown: Latency multiplier applied to a straggler's
            performance model (> 1).
        kv_degradation_interval_s: Mean gap between KV-transfer brown-out
            windows per cluster.
        kv_degradation_duration_s: Fixed brown-out window length.
        kv_degradation_factor: Visible KV-transfer latency multiplier during
            a brown-out (>= 1).
        revocation_mtbf_s: Mean time until a burst cluster's spot capacity
            is revoked (at most one revocation per burst cluster).
    """

    seed: int = 0
    machine_mtbf_s: float | None = None
    machine_mttr_s: float | None = None
    outage_interval_s: float | None = None
    outage_duration_s: float = 10.0
    straggler_interval_s: float | None = None
    straggler_duration_s: float | None = None
    straggler_slowdown: float = 1.5
    kv_degradation_interval_s: float | None = None
    kv_degradation_duration_s: float = 10.0
    kv_degradation_factor: float = 2.0
    revocation_mtbf_s: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "machine_mtbf_s",
            "machine_mttr_s",
            "outage_interval_s",
            "straggler_interval_s",
            "straggler_duration_s",
            "kv_degradation_interval_s",
            "revocation_mtbf_s",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.outage_duration_s <= 0:
            raise ValueError(f"outage_duration_s must be > 0, got {self.outage_duration_s}")
        if self.kv_degradation_duration_s <= 0:
            raise ValueError(
                f"kv_degradation_duration_s must be > 0, got {self.kv_degradation_duration_s}"
            )
        if self.straggler_slowdown <= 1.0:
            raise ValueError(f"straggler_slowdown must be > 1, got {self.straggler_slowdown}")
        if self.kv_degradation_factor < 1.0:
            raise ValueError(
                f"kv_degradation_factor must be >= 1, got {self.kv_degradation_factor}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any failure process is configured."""
        return any(
            getattr(self, name) is not None
            for name in (
                "machine_mtbf_s",
                "outage_interval_s",
                "straggler_interval_s",
                "kv_degradation_interval_s",
                "revocation_mtbf_s",
            )
        )


def compile_fault_plan(
    config: FaultPlanConfig, topology: FaultTopology, duration_s: float
) -> tuple[Injection, ...]:
    """Compile every stochastic injection into one time-sorted tuple.

    The sampling order is fixed — process by process, clusters in sorted
    name order, machines in topology order — so the plan depends only on
    ``(config, topology, duration_s)`` and never on how the simulation that
    replays it is executed.

    Onsets are sampled within ``[0, duration_s)``; paired recovery/end
    events may land past the horizon (they fire during drain, where they
    are harmless — the work they would have interrupted is already done).
    """
    if duration_s <= 0 or not config.enabled:
        return ()
    rng = np.random.default_rng(config.seed)
    clusters = sorted(topology.machines)
    injections: list[Injection] = []

    if config.machine_mtbf_s is not None:
        mtbf = config.machine_mtbf_s
        mttr = config.machine_mttr_s if config.machine_mttr_s is not None else mtbf * 0.25
        for cluster in clusters:
            for machine in topology.machines[cluster]:
                t = float(rng.exponential(mtbf))
                while t < duration_s:
                    injections.append(Injection(t, "machine-fail", machine))
                    recover = t + float(rng.exponential(mttr))
                    injections.append(Injection(recover, "machine-recover", machine))
                    t = recover + float(rng.exponential(mtbf))

    if config.outage_interval_s is not None:
        for cluster in clusters:
            t = float(rng.exponential(config.outage_interval_s))
            while t < duration_s:
                end = t + config.outage_duration_s
                injections.append(Injection(t, "outage-start", cluster))
                injections.append(Injection(end, "outage-end", cluster))
                t = end + float(rng.exponential(config.outage_interval_s))

    if config.straggler_interval_s is not None:
        for cluster in clusters:
            for machine in topology.machines[cluster]:
                onset = float(rng.exponential(config.straggler_interval_s))
                if onset < duration_s:
                    injections.append(
                        Injection(onset, "straggler-start", machine, config.straggler_slowdown)
                    )
                    if config.straggler_duration_s is not None:
                        injections.append(
                            Injection(onset + config.straggler_duration_s, "straggler-end", machine)
                        )

    if config.kv_degradation_interval_s is not None:
        for cluster in clusters:
            t = float(rng.exponential(config.kv_degradation_interval_s))
            while t < duration_s:
                end = t + config.kv_degradation_duration_s
                injections.append(
                    Injection(t, "kv-degrade-start", cluster, config.kv_degradation_factor)
                )
                injections.append(Injection(end, "kv-degrade-end", cluster))
                t = end + float(rng.exponential(config.kv_degradation_interval_s))

    if config.revocation_mtbf_s is not None:
        for cluster in sorted(topology.burst_clusters):
            t = float(rng.exponential(config.revocation_mtbf_s))
            if t < duration_s:
                injections.append(Injection(t, "revoke", cluster))

    injections.sort(key=lambda inj: (inj.time_s, inj.kind, inj.target))
    return tuple(injections)


def plan_counts(plan: tuple[Injection, ...]) -> dict[str, int]:
    """Per-kind injection counts (JSON-friendly provenance)."""
    counts: dict[str, int] = {}
    for injection in plan:
        counts[injection.kind] = counts.get(injection.kind, 0) + 1
    return counts
