"""Fleet sweep: multi-cluster routing policies and cloud-burst provisioning.

Beyond the single-cluster scenario sweep, this experiment replays a scenario
preset across a *fleet* of phase-split clusters twice:

* **static** — every cluster (including the would-be standbys) active for
  the whole window: the provision-for-peak baseline;
* **burst** — only the initial clusters active, with the
  :class:`~repro.fleet.provisioner.FleetProvisioner` renting the standbys
  elastically (warm pools, cold starts, drain-then-retire).

Both runs serve the identical trace through the same tenant-aware router
policy and report per-tenant SLO attainment plus fleet machine-hours, so the
sweep quantifies what elasticity costs (tail latency during cold starts) and
buys (machine-hours) at fleet scale.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from dataclasses import replace

from repro.core.designs import splitwise_hh
from repro.faults import get_chaos_preset
from repro.fleet.fleet import FleetResult, FleetSimulation
from repro.fleet.provisioner import FleetProvisionerConfig
from repro.fleet.reliability import DeadlineConfig, HedgeConfig, RetryPolicy
from repro.fleet.router import ROUTER_POLICIES
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.workload.scenarios import SCENARIO_PRESETS, Scenario, get_scenario
from repro.workload.trace import Trace


def prepare_fleet_run(
    preset: Scenario,
    clusters: int = 2,
    burst_clusters: int = 1,
    seed: int = 0,
    scale: float = 1.0,
    policy: str = "slo-feedback",
    burst: bool = True,
    model: ModelSpec = LLAMA2_70B,
    provisioner_config: FleetProvisionerConfig | None = None,
    chaos: str | None = None,
    fault_seed: int | None = None,
    retry_override: int | None = None,
    retry_seed: int | None = None,
    hedge_override: bool | None = None,
    deadline_ms: float | None = None,
    reliability_off: bool = False,
    parallel: int | None = None,
    epoch_s: float | None = None,
    **cluster_kwargs,
) -> tuple[FleetSimulation, Trace, tuple[tuple[float, str], ...]]:
    """Build one fleet run: the simulation, its trace, and its failures.

    The single place that maps a scenario preset onto a concrete fleet — the
    CLI, the sweep, and the perf benchmark all go through here so fleet
    semantics cannot diverge between surfaces.

    The preset's per-cluster sizing is kept (``machine_counts(scale)``) and
    its offered load is multiplied by the number of *initially active*
    clusters, so per-cluster pressure matches the single-cluster scenario.
    A static fleet (``burst=False``) activates every cluster including the
    standbys — the provision-for-peak baseline the burst run is compared
    against.  Preset failure injections land on the first cluster's
    machines.

    Args:
        preset: The scenario preset to replay.
        clusters: Initially active clusters.
        burst_clusters: Standby clusters (active from the start when
            ``burst=False``).
        seed: Trace-generation seed.
        scale: Per-cluster scale (cluster size and per-cluster load together).
        policy: Fleet router policy (see
            :data:`~repro.fleet.router.ROUTER_POLICIES`).
        burst: Attach the burst provisioner (otherwise fully static).
        model: LLM served by every cluster.
        provisioner_config: Burst-provisioner overrides (defaults used when
            omitted).
        chaos: Chaos preset name (see
            :data:`~repro.faults.presets.CHAOS_PRESETS`) arming the fault
            plane plus router reliability and admission control.  ``None``
            falls back to the scenario preset's own ``chaos`` default;
            ``"none"`` forces chaos off regardless of the scenario.
        fault_seed: Seed for the stochastic fault plan (defaults to the
            chaos preset's own seed, so ``seed`` keeps meaning *trace* seed
            and the two processes stay independently reproducible).
        retry_override: Override the chaos preset's retry budget (``0``
            disables retries entirely; ``None`` keeps the preset's policy).
        retry_seed: Seed for the retry-backoff jitter RNG (independent of
            the trace and fault seeds; ``None`` keeps the policy's seed).
        hedge_override: Force hedging on (with default
            :class:`~repro.fleet.reliability.HedgeConfig`) or off;
            ``None`` keeps the preset's setting.
        deadline_ms: Fleet-wide end-to-end deadline in milliseconds,
            replacing the preset's deadline config (``None`` keeps it).
        reliability_off: Strip the whole request-lifecycle layer (retry,
            hedge, deadlines, degraded service) regardless of the preset —
            the PR 6-equivalent baseline for goodput comparisons.
        parallel: Request sharded execution with this many workers (see
            :mod:`repro.simulation.sharding`); coupled configurations fall
            back to the serial engine with recorded reasons.
        epoch_s: Barrier spacing for sharded execution (``None`` derives a
            default from the trace window).
        **cluster_kwargs: Forwarded to every member
            :class:`~repro.core.cluster.ClusterSimulation` (``fast_forward``,
            batching/routing overrides, ...).
    """
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    trace = preset.build_trace(seed=seed, scale=scale * clusters)
    failures = tuple(
        (time_s, f"cluster-0/{name}") for time_s, name in preset.failures(scale=scale)
    )
    chaos_name = preset.chaos if chaos is None else chaos
    chaos_kwargs: dict = {}
    if chaos_name is not None and chaos_name != "none":
        bundle = get_chaos_preset(chaos_name)
        faults = bundle.faults
        if fault_seed is not None:
            faults = replace(faults, seed=fault_seed)
        chaos_kwargs = {
            "faults": faults,
            "reliability": bundle.reliability,
            "admission": bundle.admission,
            "retry": bundle.retry,
            "hedge": bundle.hedge,
            "deadlines": bundle.deadlines,
            "degraded": bundle.degraded,
        }
    if reliability_off:
        for key in ("retry", "hedge", "deadlines", "degraded"):
            chaos_kwargs.pop(key, None)
    else:
        if retry_override is not None:
            if retry_override <= 0:
                chaos_kwargs["retry"] = None
            else:
                base = chaos_kwargs.get("retry") or RetryPolicy()
                chaos_kwargs["retry"] = replace(base, max_retries=retry_override)
        if retry_seed is not None and chaos_kwargs.get("retry") is not None:
            chaos_kwargs["retry"] = replace(chaos_kwargs["retry"], seed=retry_seed)
        if hedge_override is not None:
            chaos_kwargs["hedge"] = HedgeConfig() if hedge_override else None
        if deadline_ms is not None:
            chaos_kwargs["deadlines"] = DeadlineConfig(e2e_s=deadline_ms / 1000.0)
    num_prompt, num_token = preset.machine_counts(scale)
    design = splitwise_hh(num_prompt, num_token)
    if burst:
        fleet = FleetSimulation(
            design,
            num_clusters=clusters,
            burst_clusters=burst_clusters,
            model=model,
            router=policy,
            provisioner=provisioner_config or FleetProvisionerConfig(),
            parallel=parallel,
            epoch_s=epoch_s,
            **chaos_kwargs,
            **cluster_kwargs,
        )
    else:
        fleet = FleetSimulation(
            design,
            num_clusters=clusters + burst_clusters,
            model=model,
            router=policy,
            parallel=parallel,
            epoch_s=epoch_s,
            **chaos_kwargs,
            **cluster_kwargs,
        )
    return fleet, trace, failures


def fleet_run_summary(result: FleetResult) -> dict:
    """One fleet run's JSON-friendly summary (shared by the sweep and CLI).

    The SLO reference model comes from the result itself (the model its
    fleet served).
    """
    report = result.tenant_slo_report()
    summary = {
        "completion_rate": round(result.completion_rate, 4),
        "requests_by_cluster": result.requests_by_cluster(),
        "tenant_slo": report.as_dict(),
        "machine_hours": round(result.machine_hours(), 3),
        "static_machine_hours": round(result.static_machine_hours(), 3),
        "cost": round(result.cost(), 2),
        "duration_s": round(result.duration_s, 2),
    }
    if result.provisioner is not None:
        summary["bursts"] = result.provisioner.burst_count()
        summary["provisioner_actions"] = len(result.provisioner.timeline)
    if result.requests_shed or result.router.reliability is not None:
        summary["requests_shed"] = dict(sorted(result.shed_by_tenant.items()))
        summary["bans_issued"] = result.router.bans_issued
    if result.injector is not None:
        summary["faults"] = result.injector.snapshot()
    if result.lifecycle is not None:
        summary["reliability"] = result.lifecycle.snapshot()
        summary["requests_expired"] = dict(sorted(result.expired_by_tenant.items()))
        summary["requests_degraded"] = len(result.degraded_requests)
    return summary


def fleet_sweep(
    presets: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    clusters: int = 2,
    burst_clusters: int = 1,
    scale: float = 1.0,
    seed: int = 0,
    model: ModelSpec = LLAMA2_70B,
) -> dict[str, dict[str, Mapping]]:
    """Replay every preset through static and burst fleets per router policy.

    Returns:
        ``{preset: {policy: {"static": {...}, "burst": {...},
        "machine_hours_saved": float}}}``.
    """
    chosen_presets = presets or sorted(SCENARIO_PRESETS)
    chosen_policies = policies or list(ROUTER_POLICIES)
    results: dict[str, dict] = {}
    for name in chosen_presets:
        preset = get_scenario(name)
        results[name] = {}
        for policy in chosen_policies:
            static_fleet, trace, failures = prepare_fleet_run(
                preset, clusters, burst_clusters, seed=seed, scale=scale, policy=policy,
                burst=False, model=model,
            )
            static_summary = fleet_run_summary(static_fleet.run(trace, failures=failures))
            burst_fleet, trace, failures = prepare_fleet_run(
                preset, clusters, burst_clusters, seed=seed, scale=scale, policy=policy,
                burst=True, model=model,
            )
            burst_summary = fleet_run_summary(burst_fleet.run(trace, failures=failures))
            results[name][policy] = {
                "static": static_summary,
                "burst": burst_summary,
                "machine_hours_saved": round(
                    static_summary["machine_hours"] - burst_summary["machine_hours"], 3
                ),
            }
    return results
