"""Headline claims of the paper, recomputed from the simulated summaries.

The abstract and conclusion of the paper state:

* Splitwise clusters achieve up to **1.4x higher throughput at 20% lower
  cost** than existing (Baseline-H100) clusters;
* alternatively, **2.35x more throughput** with the same cost and power
  budgets;
* and **1.76x better throughput with 15% lower power** at the same cost.

This experiment measures the corresponding ratios in the scaled simulation:
iso-power and iso-cost suites are driven to their sustainable load and the
best Splitwise design is compared with the baselines.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.cluster import simulate_design
from repro.core.designs import ClusterDesign
from repro.experiments.cluster_eval import scaled_design_suite
from repro.experiments.design_space import PAPER_ISO_COST_CONFIGS, _suite_from_configs
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.workload.generator import generate_trace


def _max_sustainable_rate(
    design: ClusterDesign,
    workload: str,
    rates: Sequence[float],
    duration_s: float,
    model: ModelSpec,
    seed: int,
) -> float:
    """Highest rate in ``rates`` at which the design meets the SLO."""
    best = 0.0
    for rate in sorted(rates):
        trace = generate_trace(workload, rate_rps=rate, duration_s=duration_s, seed=seed)
        result = simulate_design(design, trace, model=model)
        if result.completion_rate >= 0.98 and result.slo_report(model=model).satisfied:
            best = rate
        elif best > 0.0:
            break
    return best


def headline_claims(
    workload: str = "conversation",
    scale: float = 0.15,
    rates: Sequence[float] = (6, 9, 12, 15, 18, 21, 24, 27, 30),
    duration_s: float = 45.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
) -> dict[str, Mapping[str, float]]:
    """Measure the paper's headline throughput/cost/power ratios in simulation.

    Returns, for the iso-power and iso-cost suites, the sustainable rate of
    each design plus the derived headline ratios (best Splitwise vs the two
    baselines), alongside the values the paper claims.
    """
    iso_power_suite = scaled_design_suite(workload, scale)
    iso_cost_suite = _suite_from_configs(PAPER_ISO_COST_CONFIGS, scale)

    sustainable: dict[str, dict[str, float]] = {"iso_power": {}, "iso_cost": {}}
    for label, suite in (("iso_power", iso_power_suite), ("iso_cost", iso_cost_suite)):
        for name, design in suite.items():
            sustainable[label][name] = _max_sustainable_rate(
                design, workload, rates, duration_s, model, seed
            )

    def ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator else float("inf")

    iso_power = sustainable["iso_power"]
    iso_cost = sustainable["iso_cost"]
    best_splitwise_power = max(
        (name for name in iso_power if name.startswith("Splitwise")), key=lambda n: iso_power[n]
    )
    best_splitwise_cost = max(
        (name for name in iso_cost if name.startswith("Splitwise")), key=lambda n: iso_cost[n]
    )

    iso_cost_suite_costs = {name: design.cost_per_hour for name, design in iso_cost_suite.items()}
    iso_power_suite_costs = {name: design.cost_per_hour for name, design in iso_power_suite.items()}

    claims = {
        "throughput_vs_baseline_h100_iso_cost": {
            "measured": ratio(iso_cost[best_splitwise_cost], iso_cost["Baseline-H100"]),
            "paper": 1.4,
            "best_design": best_splitwise_cost,
        },
        "throughput_vs_baseline_a100_iso_power": {
            "measured": ratio(iso_power[best_splitwise_power], iso_power["Baseline-A100"]),
            "paper": 2.15,
            "best_design": best_splitwise_power,
        },
        "throughput_vs_baseline_h100_iso_power": {
            "measured": ratio(iso_power[best_splitwise_power], iso_power["Baseline-H100"]),
            "paper": 2.35,
            "best_design": best_splitwise_power,
        },
        "cost_ratio_of_best_splitwise_iso_cost": {
            "measured": ratio(
                iso_cost_suite_costs[best_splitwise_cost], iso_cost_suite_costs["Baseline-H100"]
            ),
            "paper": 1.0,
            "best_design": best_splitwise_cost,
        },
    }
    return {
        "sustainable_rates_iso_power": iso_power,
        "sustainable_rates_iso_cost": iso_cost,
        "suite_costs_iso_power": iso_power_suite_costs,
        "suite_costs_iso_cost": iso_cost_suite_costs,
        "claims": claims,
    }
