"""Cluster-scale evaluation experiments (Figs. 16, 17, 20 and §VI-E).

The paper evaluates iso-power throughput-optimized clusters of 40-88
machines at 30-250 requests per second.  Simulating at that scale is
possible with this package but slow in a test/benchmark loop, so every
experiment here takes a ``scale`` parameter (default 0.2) that shrinks both
the machine counts and the offered load proportionally.  The *relationships*
the paper reports — which design wins on which metric, and by roughly what
factor — are preserved; absolute request rates are not comparable to the
paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.cluster import SimulationResult, simulate_design
from repro.core.designs import (
    ClusterDesign,
    baseline_a100,
    baseline_h100,
    splitwise_aa,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)
from repro.core.machine import MachineRole
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.workload.generator import generate_trace

#: Machine counts of the paper's iso-power throughput-optimized clusters
#: (Fig. 16 legends): {workload: {design family: (prompt, token)}}.
#: Baselines store (total, 0).
PAPER_ISO_POWER_CONFIGS: Mapping[str, Mapping[str, tuple[int, int]]] = {
    "coding": {
        "Baseline-A100": (70, 0),
        "Baseline-H100": (40, 0),
        "Splitwise-AA": (55, 15),
        "Splitwise-HH": (35, 5),
        "Splitwise-HA": (35, 8),
        "Splitwise-HHcap": (35, 7),
    },
    "conversation": {
        "Baseline-A100": (70, 0),
        "Baseline-H100": (40, 0),
        "Splitwise-AA": (45, 25),
        "Splitwise-HH": (25, 15),
        "Splitwise-HA": (25, 26),
        "Splitwise-HHcap": (25, 21),
    },
}

_FACTORIES = {
    "Baseline-A100": baseline_a100,
    "Baseline-H100": baseline_h100,
    "Splitwise-AA": splitwise_aa,
    "Splitwise-HH": splitwise_hh,
    "Splitwise-HA": splitwise_ha,
    "Splitwise-HHcap": splitwise_hhcap,
}


def scaled_design_suite(
    workload: str = "conversation",
    scale: float = 0.2,
    families: Sequence[str] | None = None,
) -> dict[str, ClusterDesign]:
    """The paper's iso-power cluster suite, shrunk by ``scale``.

    Args:
        workload: Which workload's provisioning to copy (``"coding"`` or
            ``"conversation"``).
        scale: Multiplier applied to every machine count (rounded, minimum 1).
        families: Optional subset of design family names.

    Returns:
        Mapping from family name to a sized :class:`ClusterDesign`.
    """
    if workload not in PAPER_ISO_POWER_CONFIGS:
        raise KeyError(f"no iso-power configuration recorded for workload {workload!r}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    configs = PAPER_ISO_POWER_CONFIGS[workload]
    chosen = families or list(configs)
    suite: dict[str, ClusterDesign] = {}
    for family in chosen:
        prompt, token = configs[family]
        scaled_prompt = max(1, round(prompt * scale))
        scaled_token = max(1, round(token * scale)) if token else 0
        factory = _FACTORIES[family]
        if token == 0:
            suite[family] = factory(scaled_prompt)
        else:
            suite[family] = factory(scaled_prompt, scaled_token)
    return suite


def fig16_latency_vs_load(
    designs: Mapping[str, ClusterDesign],
    workload: str = "conversation",
    rates: Sequence[float] = (6, 10, 14, 18, 22, 26),
    duration_s: float = 60.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
) -> dict[str, dict[float, dict[str, float]]]:
    """Fig. 16: P50/P90 TTFT, TBT and E2E across input loads for each design.

    Returns ``{design: {rate: {metric: value_seconds, ..., "slo_ok": bool}}}``.
    """
    results: dict[str, dict[float, dict[str, float]]] = {}
    for name, design in designs.items():
        per_rate: dict[float, dict[str, float]] = {}
        for rate in rates:
            trace = generate_trace(workload, rate_rps=rate, duration_s=duration_s, seed=seed)
            result = simulate_design(design, trace, model=model)
            metrics = result.request_metrics()
            slo = result.slo_report(model=model)
            per_rate[rate] = {
                "ttft_p50": metrics.ttft.p50,
                "ttft_p90": metrics.ttft.p90,
                "tbt_p50": metrics.tbt.p50,
                "tbt_p90": metrics.tbt.p90,
                "e2e_p50": metrics.e2e.p50,
                "e2e_p90": metrics.e2e.p90,
                "throughput_rps": metrics.throughput_rps,
                "completion_rate": result.completion_rate,
                "slo_ok": float(slo.satisfied),
            }
        results[name] = per_rate
    return results


def fig17_batch_occupancy(
    workload: str = "conversation",
    scale: float = 0.2,
    low_rate: float = 14.0,
    high_rate: float = 26.0,
    duration_s: float = 60.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Fig. 17: batched-token occupancy CDFs at low and high load.

    Compares Baseline-H100 machines against the prompt and token pools of
    Splitwise-HH, reporting the fraction of busy time spent at small batches
    (<= 15 active tokens, the paper's observation) for each group.
    """
    suite = scaled_design_suite(workload, scale, families=("Baseline-H100", "Splitwise-HH"))
    out: dict[str, dict[str, float]] = {}
    for label, rate in (("low", low_rate), ("high", high_rate)):
        trace = generate_trace(workload, rate_rps=rate, duration_s=duration_s, seed=seed)
        baseline_result = simulate_design(suite["Baseline-H100"], trace, model=model)
        splitwise_result = simulate_design(suite["Splitwise-HH"], trace, model=model)
        baseline_occ = baseline_result.occupancy_by_home_role(MachineRole.MIXED)
        prompt_occ = splitwise_result.occupancy_by_home_role(MachineRole.PROMPT)
        token_occ = splitwise_result.occupancy_by_home_role(MachineRole.TOKEN)
        out[label] = {
            "baseline_h100_frac_le_15": baseline_occ.fraction_at_or_below(15),
            "splitwise_prompt_frac_le_15": prompt_occ.fraction_at_or_below(15),
            "splitwise_token_frac_le_15": token_occ.fraction_at_or_below(15),
            "splitwise_token_frac_le_1": token_occ.fraction_at_or_below(1),
            "baseline_h100_frac_le_1": baseline_occ.fraction_at_or_below(1),
        }
    return out


def fig20_robustness(
    provisioned_for: str = "coding",
    run_workload: str = "conversation",
    scale: float = 0.2,
    rates: Sequence[float] = (6, 10, 14, 18),
    duration_s: float = 60.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
) -> dict[str, dict[float, dict[str, float]]]:
    """Fig. 20: run a workload (or model) on clusters sized for another.

    Fig. 20a uses ``provisioned_for="coding"``, ``run_workload="conversation"``;
    Fig. 20b keeps the conversation provisioning but switches the model (pass
    ``model=LLAMA2_70B`` on a suite provisioned for BLOOM-176B).
    """
    suite = scaled_design_suite(provisioned_for, scale)
    return fig16_latency_vs_load(
        suite, workload=run_workload, rates=rates, duration_s=duration_s, model=model, seed=seed
    )


def batch_job_throughput_per_cost(
    workload: str = "conversation",
    scale: float = 0.2,
    stress_rate: float = 40.0,
    duration_s: float = 45.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
    families: Sequence[str] = ("Baseline-A100", "Baseline-H100", "Splitwise-AA", "Splitwise-HH"),
) -> dict[str, dict[str, float]]:
    """§VI-E: throughput per dollar when clusters are stressed for batch jobs.

    Batch jobs have no latency SLO, so each cluster is driven well beyond its
    interactive operating point and judged purely on sustained completed
    requests per second per $/hr of cluster cost.
    """
    suite = scaled_design_suite(workload, scale, families=families)
    trace = generate_trace(workload, rate_rps=stress_rate, duration_s=duration_s, seed=seed)
    out: dict[str, dict[str, float]] = {}
    for name, design in suite.items():
        result: SimulationResult = simulate_design(design, trace, model=model)
        metrics = result.request_metrics()
        out[name] = {
            "throughput_rps": metrics.throughput_rps,
            "cost_per_hour": design.cost_per_hour,
            "rps_per_dollar_hour": metrics.throughput_rps / design.cost_per_hour,
            "tokens_per_second": sum(
                result.metrics.machine_stats(m.name).tokens_generated for m in result.scheduler.machines
            )
            / result.duration_s,
        }
    return out

