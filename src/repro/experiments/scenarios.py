"""Time-varying scenario sweep: autoscaled vs statically provisioned clusters.

Beyond the paper's stationary-load evaluation, this experiment replays every
named scenario preset (diurnal, burst-storm, failure-under-load,
mixed-tenant; see :mod:`repro.workload.scenarios`) through the same
peak-sized Splitwise-HH cluster twice — once statically provisioned, once
with the dynamic pool autoscaler — and reports SLO attainment, machine-hour
consumption, and the autoscaler's re-purposing activity side by side.  This
quantifies the cluster-level claim that dynamic machine re-purposing absorbs
time-varying traffic without paying for peak provisioning around the clock.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.autoscaler import AutoscalerConfig
from repro.core.cluster import ClusterSimulation, SimulationResult
from repro.core.designs import splitwise_hh
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.workload.scenarios import SCENARIO_PRESETS, Scenario, get_scenario
from repro.workload.trace import Trace


def prepare_scenario_run(
    preset: Scenario,
    seed: int = 0,
    scale: float = 1.0,
    autoscaled: bool = True,
    model: ModelSpec = LLAMA2_70B,
    **cluster_kwargs,
) -> tuple[ClusterSimulation, Trace, tuple[tuple[float, str], ...]]:
    """Build one preset run: the simulation, its trace, and its failures.

    The single place that maps a :class:`~repro.workload.scenarios.Scenario`
    onto a concrete cluster run — peak-sized Splitwise-HH design from
    ``machine_counts``, failures scaled with the trace, and (when
    ``autoscaled``) an :class:`AutoscalerConfig` built from the preset's
    overrides.  The CLI, the scenario sweep, and the perf benchmark all go
    through here so preset semantics cannot diverge between surfaces.
    """
    trace = preset.build_trace(seed=seed, scale=scale)
    failures = preset.failures(scale=scale)
    num_prompt, num_token = preset.machine_counts(scale)
    autoscaler = (
        AutoscalerConfig(**dict(preset.autoscaler_overrides or {})) if autoscaled else None
    )
    simulation = ClusterSimulation(
        splitwise_hh(num_prompt, num_token), model=model, autoscaler=autoscaler, **cluster_kwargs
    )
    return simulation, trace, failures


def _run_summary(result: SimulationResult, model: ModelSpec) -> dict[str, float]:
    metrics = result.request_metrics()
    slo = result.slo_report(model=model)
    summary = {
        "completion_rate": result.completion_rate,
        "throughput_rps": metrics.throughput_rps,
        "ttft_p90_s": metrics.ttft.p90,
        "e2e_p90_s": metrics.e2e.p90,
        "slo_ok": float(slo.satisfied),
        "slo_violations": float(len(slo.violations())),
        "tbt_slo_samples": float(slo.samples.get("tbt", 0)),
        "machine_hours": result.machine_hours(),
        "energy_wh": result.total_energy_wh(),
        "pool_switches": float(result.scheduler.pool_switches),
    }
    if result.autoscaler is not None:
        summary["repurposes"] = float(result.autoscaler.repurpose_count())
        summary["autoscaler_actions"] = float(len(result.autoscaler.timeline))
    return summary


def scenario_sweep(
    presets: Sequence[str] | None = None,
    scale: float = 1.0,
    seed: int = 0,
    model: ModelSpec = LLAMA2_70B,
) -> dict[str, dict[str, Mapping[str, float]]]:
    """Run each scenario preset statically and autoscaled on the same trace.

    Args:
        presets: Preset names to run (default: all).
        scale: Shrinks/grows each preset's cluster and offered load together.
        seed: Trace-generation seed (runs are fully deterministic under it).
        model: LLM served by every cluster.

    Returns:
        ``{preset: {"static": {...}, "autoscaled": {...},
        "machine_hours_saved": float}}`` with the per-run summaries produced
        by the SLO evaluator and machine-hour accounting.
    """
    chosen = presets or sorted(SCENARIO_PRESETS)
    results: dict[str, dict] = {}
    for name in chosen:
        preset = get_scenario(name)
        static_sim, trace, failures = prepare_scenario_run(
            preset, seed=seed, scale=scale, autoscaled=False, model=model
        )
        static_result = static_sim.run(trace, failures=failures)
        auto_sim, trace, failures = prepare_scenario_run(
            preset, seed=seed, scale=scale, autoscaled=True, model=model
        )
        auto_result = auto_sim.run(trace, failures=failures)

        static_summary = _run_summary(static_result, model)
        auto_summary = _run_summary(auto_result, model)
        results[name] = {
            "static": static_summary,
            "autoscaled": auto_summary,
            "machine_hours_saved": static_summary["machine_hours"] - auto_summary["machine_hours"],
        }
    return results
