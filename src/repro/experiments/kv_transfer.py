"""KV-cache transfer experiments (Figs. 14 and 15 of the paper)."""

from __future__ import annotations

from typing import Sequence

from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.hardware.interconnect import infiniband_for
from repro.hardware.machine import DGX_A100, DGX_H100, MachineSpec
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.models.performance import AnalyticalPerformanceModel

#: Prompt sizes used by Fig. 14/15.
TRANSFER_PROMPT_SIZES = (128, 256, 384, 512, 640, 768, 896, 1024, 1536, 2048)


def _transfer_model(model: ModelSpec, machine: MachineSpec) -> KVTransferModel:
    link = infiniband_for(machine.interconnect_gbps, machine.interconnect_gbps)
    return KVTransferModel(model=model, link=link)


def fig14_transfer_latency(
    model: ModelSpec = LLAMA2_70B,
    machines: Sequence[MachineSpec] = (DGX_A100, DGX_H100),
    prompt_sizes: Sequence[int] = TRANSFER_PROMPT_SIZES,
) -> dict[str, dict[int, float]]:
    """Fig. 14: visible KV-cache transfer latency (ms) vs prompt size.

    Reported for both the serialized and the per-layer overlapped scheme on
    the A100 (200 Gbps) and H100 (400 Gbps) setups.
    """
    results: dict[str, dict[int, float]] = {}
    for machine in machines:
        transfer = _transfer_model(model, machine)
        perf = AnalyticalPerformanceModel(model, machine)
        serialized = {}
        per_layer = {}
        for tokens in prompt_sizes:
            prompt_latency = perf.prompt_latency(tokens)
            serialized[tokens] = transfer.serialized_latency(tokens) * 1e3
            per_layer[tokens] = transfer.per_layer_latency(tokens, prompt_latency) * 1e3
        family = machine.gpu.name
        results[f"{family}-Serialized"] = serialized
        results[f"{family}-Per-Layer"] = per_layer
    return results


def fig15_transfer_overhead(
    model: ModelSpec = LLAMA2_70B,
    machine: MachineSpec = DGX_H100,
    prompt_sizes: Sequence[int] = TRANSFER_PROMPT_SIZES,
    output_tokens: int = 13,
) -> dict[str, dict[int, float]]:
    """Fig. 15: impact of the KV-cache transfer on TTFT, second token, and E2E.

    Compares a 2-machine Splitwise setup (per-layer and serialized transfer)
    against a 1-machine baseline running the same unbatched request, for
    coding-like requests (median 13 output tokens).  All latencies in ms,
    plus relative overheads.
    """
    transfer = _transfer_model(model, machine)
    perf = AnalyticalPerformanceModel(model, machine)
    results: dict[str, dict[int, float]] = {
        "ttft_baseline_ms": {},
        "ttft_per_layer_ms": {},
        "ttft_serialized_ms": {},
        "e2e_baseline_ms": {},
        "e2e_per_layer_ms": {},
        "e2e_serialized_ms": {},
        "second_token_overhead_per_layer": {},
        "second_token_overhead_serialized": {},
        "e2e_overhead_per_layer": {},
        "e2e_overhead_serialized": {},
    }
    for tokens in prompt_sizes:
        prompt_latency = perf.prompt_latency(tokens)
        decode_time = sum(perf.token_latency(1, tokens + i) for i in range(1, output_tokens))
        tbt_second = perf.token_latency(1, tokens + 1)
        baseline_e2e = prompt_latency + decode_time

        serialized_visible = transfer.visible_latency(tokens, prompt_latency, TransferMode.SERIALIZED)
        per_layer_visible = transfer.visible_latency(tokens, prompt_latency, TransferMode.PER_LAYER)
        per_layer_prompt = prompt_latency * transfer.prompt_interference_factor(TransferMode.PER_LAYER)

        results["ttft_baseline_ms"][tokens] = prompt_latency * 1e3
        results["ttft_serialized_ms"][tokens] = prompt_latency * 1e3
        results["ttft_per_layer_ms"][tokens] = per_layer_prompt * 1e3
        results["e2e_baseline_ms"][tokens] = baseline_e2e * 1e3
        results["e2e_serialized_ms"][tokens] = (prompt_latency + serialized_visible + decode_time) * 1e3
        results["e2e_per_layer_ms"][tokens] = (per_layer_prompt + per_layer_visible + decode_time) * 1e3
        results["second_token_overhead_serialized"][tokens] = serialized_visible / tbt_second
        results["second_token_overhead_per_layer"][tokens] = per_layer_visible / tbt_second
        results["e2e_overhead_serialized"][tokens] = (
            results["e2e_serialized_ms"][tokens] / results["e2e_baseline_ms"][tokens] - 1.0
        )
        results["e2e_overhead_per_layer"][tokens] = (
            results["e2e_per_layer_ms"][tokens] / results["e2e_baseline_ms"][tokens] - 1.0
        )
    return results
