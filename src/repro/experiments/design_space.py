"""Provisioning design-space experiments (Fig. 12, Fig. 18, Fig. 19).

``fig12_design_space`` exercises the actual search machinery: it sweeps a
(prompt, token) machine-count grid for one design family and reports, for
each point, whether the SLO holds and what the cluster costs — the same
two-dimensional space the paper plots.

The summary experiments (Figs. 18 and 19) evaluate the paper's provisioned
cluster configurations (scaled down) and report normalized machine count,
throughput, cost, and power, exactly the bar groups of the summary plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.cluster import simulate_design
from repro.core.designs import ClusterDesign
from repro.core.provisioning import OptimizationGoal, Provisioner
from repro.experiments.cluster_eval import _FACTORIES, scaled_design_suite
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.workload.generator import generate_trace

#: Paper cluster configurations for the iso-cost throughput-optimized suite
#: (Fig. 18b legends).
PAPER_ISO_COST_CONFIGS: Mapping[str, tuple[int, int]] = {
    "Baseline-A100": (86, 0),
    "Baseline-H100": (40, 0),
    "Splitwise-AA": (51, 35),
    "Splitwise-HH": (25, 15),
    "Splitwise-HA": (30, 21),
    "Splitwise-HHcap": (30, 10),
}

#: Paper cluster configurations for the iso-throughput power-optimized suite
#: (Fig. 19a legends).
PAPER_ISO_THROUGHPUT_POWER_CONFIGS: Mapping[str, tuple[int, int]] = {
    "Baseline-A100": (88, 0),
    "Baseline-H100": (24, 0),
    "Splitwise-AA": (25, 16),
    "Splitwise-HH": (5, 17),
    "Splitwise-HA": (21, 1),
    "Splitwise-HHcap": (8, 16),
}

#: Paper cluster configurations for the iso-throughput cost-optimized suite
#: (Fig. 19b legends).
PAPER_ISO_THROUGHPUT_COST_CONFIGS: Mapping[str, tuple[int, int]] = {
    "Baseline-A100": (88, 0),
    "Baseline-H100": (24, 0),
    "Splitwise-AA": (25, 16),
    "Splitwise-HH": (5, 17),
    "Splitwise-HA": (11, 19),
    "Splitwise-HHcap": (19, 3),
}


def _suite_from_configs(
    configs: Mapping[str, tuple[int, int]], scale: float, families: Sequence[str] | None = None
) -> dict[str, ClusterDesign]:
    chosen = families or list(configs)
    suite: dict[str, ClusterDesign] = {}
    for family in chosen:
        prompt, token = configs[family]
        scaled_prompt = max(1, round(prompt * scale))
        scaled_token = max(1, round(token * scale)) if token else 0
        factory = _FACTORIES[family]
        suite[family] = factory(scaled_prompt) if token == 0 else factory(scaled_prompt, scaled_token)
    return suite


def fig12_design_space(
    family: str = "Splitwise-HH",
    workload: str = "coding",
    target_rps: float = 14.0,
    prompt_counts: Sequence[int] = (3, 4, 5, 6, 7),
    token_counts: Sequence[int] = (1, 2, 3),
    trace_duration_s: float = 45.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
) -> dict[str, object]:
    """Fig. 12: the (prompt, token) design space for one family and load.

    Every grid point is simulated; the result reports, per point, SLO
    feasibility, P90 latencies, and cost, plus the cost-optimal feasible
    point (the paper's ``*``).  The default target of 14 RPS corresponds to
    the paper's 70 RPS at the default 0.2 cluster scale.
    """
    provisioner = Provisioner(model=model, workload=workload, trace_duration_s=trace_duration_s, seed=seed)
    search = provisioner.size_for_throughput(
        family,
        target_rps=target_rps,
        prompt_counts=prompt_counts,
        token_counts=token_counts,
        goal=OptimizationGoal.COST,
    )
    grid = {}
    for candidate in search.candidates:
        design = candidate.design
        grid[(design.num_prompt, design.num_token)] = {
            "feasible": candidate.feasible,
            "cost_per_hour": candidate.cost_per_hour,
            "power_kw": candidate.provisioned_power_kw,
            "ttft_p90": candidate.metrics.ttft.p90,
            "e2e_p90": candidate.metrics.e2e.p90,
            "completion_rate": candidate.completion_rate,
        }
    best = None
    if search.best is not None:
        best = (search.best.design.num_prompt, search.best.design.num_token)
    return {"grid": grid, "optimal": best, "target_rps": target_rps, "family": family}


def _measure_suite(
    suite: Mapping[str, ClusterDesign],
    workload: str,
    rate_rps: float,
    duration_s: float,
    model: ModelSpec,
    seed: int,
) -> dict[str, dict[str, float]]:
    """Simulate every design in a suite at one load and collect summary numbers."""
    trace = generate_trace(workload, rate_rps=rate_rps, duration_s=duration_s, seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for name, design in suite.items():
        result = simulate_design(design, trace, model=model)
        metrics = result.request_metrics()
        slo = result.slo_report(model=model)
        rows[name] = {
            "num_servers": design.num_machines,
            "cost_per_hour": design.cost_per_hour,
            "power_kw": design.provisioned_power_kw,
            "throughput_rps": metrics.throughput_rps,
            "slo_ok": float(slo.satisfied),
            "completion_rate": result.completion_rate,
        }
    return rows


def _normalize(rows: dict[str, dict[str, float]], baseline: str) -> dict[str, dict[str, float]]:
    """Normalize every numeric column to the baseline design's value."""
    reference = rows[baseline]
    normalized: dict[str, dict[str, float]] = {}
    for name, row in rows.items():
        normalized[name] = {
            key: (value / reference[key] if reference.get(key) else value) for key, value in row.items()
        }
    return normalized


def iso_budget_summary(
    budget: str = "power",
    workload: str = "conversation",
    scale: float = 0.2,
    rate_rps: float = 18.0,
    duration_s: float = 60.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
    normalize_to: str = "Baseline-A100",
) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 18: iso-power ("power") or iso-cost ("cost") throughput-optimized summary.

    Evaluates the paper's provisioned suites (scaled) at a common load and
    reports raw and normalized #servers / throughput / cost / power per design.
    """
    if budget == "power":
        suite = scaled_design_suite(workload, scale)
    elif budget == "cost":
        suite = _suite_from_configs(PAPER_ISO_COST_CONFIGS, scale)
    else:
        raise ValueError(f"budget must be 'power' or 'cost', got {budget!r}")
    rows = _measure_suite(suite, workload, rate_rps, duration_s, model, seed)
    return {"raw": rows, "normalized": _normalize(rows, normalize_to)}


def iso_throughput_summary(
    goal: str = "power",
    workload: str = "conversation",
    scale: float = 0.2,
    rate_rps: float = 14.0,
    duration_s: float = 60.0,
    model: ModelSpec = LLAMA2_70B,
    seed: int = 0,
    normalize_to: str = "Baseline-A100",
) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 19: iso-throughput, power-optimized ("power") or cost-optimized ("cost") summary."""
    if goal == "power":
        configs = PAPER_ISO_THROUGHPUT_POWER_CONFIGS
    elif goal == "cost":
        configs = PAPER_ISO_THROUGHPUT_COST_CONFIGS
    else:
        raise ValueError(f"goal must be 'power' or 'cost', got {goal!r}")
    suite = _suite_from_configs(configs, scale)
    rows = _measure_suite(suite, workload, rate_rps, duration_s, model, seed)
    return {"raw": rows, "normalized": _normalize(rows, normalize_to)}
