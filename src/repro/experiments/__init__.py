"""Canned experiment runners, one per table/figure of the paper.

Every function here regenerates the data behind one of the paper's tables or
figures (at a configurable, laptop-friendly scale) and returns plain Python
data structures (dicts/lists) that the benchmark harness prints and the test
suite asserts on.  See EXPERIMENTS.md for the mapping and the paper-vs-
measured comparison.
"""

from repro.experiments.characterization import (
    fig3_token_distributions,
    fig4_batch_utilization,
    fig5_latency,
    fig6_throughput,
    fig7_memory,
    fig8_power,
    fig9_power_cap,
    table1_hardware_comparison,
    table4_gpu_comparison,
)
from repro.experiments.cluster_eval import (
    batch_job_throughput_per_cost,
    fig16_latency_vs_load,
    fig17_batch_occupancy,
    fig20_robustness,
    scaled_design_suite,
)
from repro.experiments.design_space import fig12_design_space, iso_budget_summary, iso_throughput_summary
from repro.experiments.headline import headline_claims
from repro.experiments.fleet_sweep import fleet_sweep, prepare_fleet_run
from repro.experiments.kv_transfer import fig14_transfer_latency, fig15_transfer_overhead
from repro.experiments.scenarios import scenario_sweep

__all__ = [
    "table1_hardware_comparison",
    "fig3_token_distributions",
    "fig4_batch_utilization",
    "fig5_latency",
    "fig6_throughput",
    "fig7_memory",
    "fig8_power",
    "fig9_power_cap",
    "table4_gpu_comparison",
    "fig12_design_space",
    "fig14_transfer_latency",
    "fig15_transfer_overhead",
    "fig16_latency_vs_load",
    "fig17_batch_occupancy",
    "fig20_robustness",
    "batch_job_throughput_per_cost",
    "scaled_design_suite",
    "iso_budget_summary",
    "iso_throughput_summary",
    "headline_claims",
    "scenario_sweep",
    "fleet_sweep",
    "prepare_fleet_run",
]
