"""Characterization experiments (Section III of the paper).

These regenerate Table I, Figs. 3-9, and Table IV from the models in this
repository: token distributions, batch utilization under mixed continuous
batching, phase latency/throughput/memory/power curves, and the A100 vs H100
comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.cluster import simulate_design
from repro.core.designs import ClusterDesign
from repro.hardware.gpu import GPU_A100, GPU_H100
from repro.hardware.machine import DGX_A100, DGX_H100, MachineSpec
from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec
from repro.models.memory import GB, MemoryModel
from repro.models.performance import AnalyticalPerformanceModel
from repro.models.power import PowerModel
from repro.workload.distributions import get_workload
from repro.workload.generator import generate_trace

#: Prompt sizes swept in Fig. 5a / Fig. 14 / Fig. 15.
PROMPT_SIZE_GRID = (128, 256, 512, 1024, 2048, 4096, 8192)

#: Decode batch sizes swept in Fig. 5b / Fig. 6b / Fig. 8b.
BATCH_SIZE_GRID = (1, 2, 4, 8, 16, 32, 64)


def table1_hardware_comparison() -> dict[str, dict[str, float]]:
    """Table I: A100 vs H100 specifications and their ratios."""
    rows = {
        "TFLOPs": (GPU_A100.fp16_tflops, GPU_H100.fp16_tflops),
        "HBM capacity (GB)": (GPU_A100.hbm_capacity_gb, GPU_H100.hbm_capacity_gb),
        "HBM bandwidth (GBps)": (GPU_A100.hbm_bandwidth_gbps, GPU_H100.hbm_bandwidth_gbps),
        "Power (W)": (GPU_A100.tdp_watts, GPU_H100.tdp_watts),
        "NVLink (GBps)": (GPU_A100.nvlink_gbps, GPU_H100.nvlink_gbps),
        "Infiniband (Gbps)": (GPU_A100.infiniband_gbps, GPU_H100.infiniband_gbps),
        "Cost per machine ($/hr)": (GPU_A100.cost_per_hour, GPU_H100.cost_per_hour),
    }
    return {
        metric: {"A100": a100, "H100": h100, "ratio": h100 / a100}
        for metric, (a100, h100) in rows.items()
    }


def fig3_token_distributions(sample_size: int = 20000, seed: int = 0) -> dict[str, dict[str, float]]:
    """Fig. 3: prompt and output token distributions of the two workloads.

    Returns medians and selected CDF quantiles for the coding and
    conversation workloads.
    """
    rng = np.random.default_rng(seed)
    out: dict[str, dict[str, float]] = {}
    for name in ("coding", "conversation"):
        workload = get_workload(name)
        prompts = workload.prompt_tokens.sample(rng, sample_size)
        outputs = workload.output_tokens.sample(rng, sample_size)
        out[name] = {
            "prompt_p50": float(np.percentile(prompts, 50)),
            "prompt_p90": float(np.percentile(prompts, 90)),
            "output_p50": float(np.percentile(outputs, 50)),
            "output_p90": float(np.percentile(outputs, 90)),
            "output_mean": float(np.mean(outputs)),
        }
    return out


def fig4_batch_utilization(
    model: ModelSpec = LLAMA2_70B,
    machine: MachineSpec = DGX_H100,
    workloads: Sequence[str] = ("coding", "conversation"),
    rate_rps: float = 2.0,
    duration_s: float = 120.0,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Fig. 4: time spent at each active-batched-token count on one machine.

    The paper runs a scaled-down trace (2 RPS) on a single machine with mixed
    continuous batching and reports the CDF of time spent at various active
    token counts.  Returns, per workload, the fraction of busy time spent at
    or below 1 and 20 active tokens plus the median occupancy.
    """
    results: dict[str, dict[str, float]] = {}
    for workload in workloads:
        design = ClusterDesign(
            name=f"single-{machine.name}",
            prompt_machine=machine,
            token_machine=machine,
            num_prompt=1,
            num_token=0,
            split=False,
        )
        trace = generate_trace(workload, rate_rps=rate_rps, duration_s=duration_s, seed=seed)
        result = simulate_design(design, trace, model=model)
        occupancy = result.metrics.machine_stats("machine-0").occupancy
        cdf = occupancy.cdf()
        median_tokens = next((tokens for tokens, frac in cdf if frac >= 0.5), 0)
        results[workload] = {
            "fraction_at_1_token": occupancy.fraction_at_or_below(1),
            "fraction_at_or_below_20_tokens": occupancy.fraction_at_or_below(20),
            "median_active_tokens": float(median_tokens),
            "busy_time_s": occupancy.total_time,
        }
    return results


def fig5_latency(
    models: Sequence[ModelSpec] = (BLOOM_176B, LLAMA2_70B),
    machine: MachineSpec = DGX_H100,
    prompt_sizes: Sequence[int] = PROMPT_SIZE_GRID,
    batch_sizes: Sequence[int] = BATCH_SIZE_GRID,
    workloads: Sequence[str] = ("coding", "conversation"),
    num_requests: int = 300,
    seed: int = 0,
) -> dict[str, dict]:
    """Fig. 5: TTFT vs prompt size, TBT vs batch size, E2E percentiles.

    Returns three sub-dictionaries keyed ``"ttft"``, ``"tbt"``, ``"e2e"``.
    TTFT/TBT values are in milliseconds; E2E percentiles in seconds.
    """
    ttft: dict[str, dict[int, float]] = {}
    tbt: dict[str, dict[int, float]] = {}
    e2e: dict[str, dict[str, float]] = {}
    rng = np.random.default_rng(seed)
    for model in models:
        perf = AnalyticalPerformanceModel(model, machine)
        ttft[model.name] = {n: perf.ttft(n) * 1e3 for n in prompt_sizes}
        tbt[model.name] = {b: perf.tbt(b, b * 1024) * 1e3 for b in batch_sizes}
        for workload in workloads:
            spec = get_workload(workload)
            prompts = spec.prompt_tokens.sample(rng, num_requests)
            outputs = spec.output_tokens.sample(rng, num_requests)
            latencies = [perf.e2e_latency(int(p), int(o)) for p, o in zip(prompts, outputs)]
            e2e[f"{workload}-{model.name}"] = {
                "p50": float(np.percentile(latencies, 50)),
                "p90": float(np.percentile(latencies, 90)),
                "p99": float(np.percentile(latencies, 99)),
            }
    return {"ttft": ttft, "tbt": tbt, "e2e": e2e}


def fig6_throughput(
    models: Sequence[ModelSpec] = (BLOOM_176B, LLAMA2_70B),
    machine: MachineSpec = DGX_H100,
    prompt_sizes: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
    batch_sizes: Sequence[int] = BATCH_SIZE_GRID,
    context_per_request: int = 1024,
) -> dict[str, dict]:
    """Fig. 6: phase throughput vs batched tokens / batch size.

    Prompt throughput is prompt tokens processed per second; token throughput
    is generated tokens per second.
    """
    prompt: dict[str, dict[int, float]] = {}
    token: dict[str, dict[int, float]] = {}
    for model in models:
        perf = AnalyticalPerformanceModel(model, machine)
        prompt[model.name] = {n: perf.prompt_throughput(n) for n in prompt_sizes}
        token[model.name] = {
            b: perf.token_throughput(b, b * context_per_request) for b in batch_sizes
        }
    return {"prompt": prompt, "token": token}


def fig7_memory(
    model: ModelSpec = BLOOM_176B,
    machine: MachineSpec = DGX_H100,
    token_counts: Sequence[int] = (1, 10, 100, 1000, 10000, 30000, 60000),
) -> dict[str, dict[int, float]]:
    """Fig. 7: required memory (GB) vs number of batched tokens.

    In the prompt phase the batched tokens are prompt tokens; in the token
    phase they are the cached contexts of the batched requests — both consume
    KV-cache at the same per-token rate, on top of the model weights.
    """
    memory = MemoryModel(model, machine)
    usage = {n: memory.usage(n).total_gb for n in token_counts}
    return {
        "memory_gb": usage,
        "model_size_gb": {0: model.weight_bytes / GB},
        "capacity_gb": {0: machine.total_hbm_capacity_gb},
        "max_kv_tokens": {0: float(memory.max_kv_tokens)},
    }


def fig8_power(
    model: ModelSpec = LLAMA2_70B,
    machine: MachineSpec = DGX_H100,
    prompt_sizes: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
) -> dict[str, dict[int, float]]:
    """Fig. 8: power draw (fraction of TDP) vs batch size per phase."""
    power = PowerModel(model, machine)
    return {
        "prompt": {n: power.prompt_power_fraction(n) for n in prompt_sizes},
        "token": {b: power.token_power_fraction(b) for b in batch_sizes},
    }


def fig9_power_cap(
    model: ModelSpec = LLAMA2_70B,
    machine: MachineSpec = DGX_H100,
    caps_watts: Sequence[int] = (700, 650, 600, 550, 500, 450, 400, 350, 300, 250, 200),
    prompt_tokens: int = 8192,
    batch_size: int = 64,
) -> dict[str, dict[int, float]]:
    """Fig. 9: latency impact of GPU power caps on each phase.

    Returns TTFT (ms) for a maximum-size prompt batch and TBT (ms) for a
    maximum-size decode batch at each per-GPU power cap.
    """
    perf = AnalyticalPerformanceModel(model, machine, apply_power_cap=False)
    power = PowerModel(model, machine)
    base_ttft = perf.prompt_latency(prompt_tokens) * 1e3
    base_tbt = perf.token_latency(batch_size, batch_size * 1024) * 1e3
    ttft = {}
    tbt = {}
    for cap in caps_watts:
        fraction = cap / machine.gpu.tdp_watts
        ttft[cap] = base_ttft * power.prompt_cap_slowdown(prompt_tokens, fraction)
        tbt[cap] = base_tbt * power.token_cap_slowdown(batch_size, fraction)
    return {"ttft_ms": ttft, "tbt_ms": tbt}


def table4_gpu_comparison(
    model: ModelSpec = LLAMA2_70B,
    workloads: Sequence[str] = ("coding", "conversation"),
    num_requests: int = 400,
    seed: int = 0,
) -> dict[str, dict[str, Mapping[str, float]]]:
    """Table IV: P50 per-request metrics on A100 vs H100 without batching.

    Metrics per (workload, machine): TTFT (ms), TBT (ms), E2E (ms), cost ($)
    and energy (Wh) of the median request.
    """
    rng = np.random.default_rng(seed)
    results: dict[str, dict[str, Mapping[str, float]]] = {}
    for workload in workloads:
        spec = get_workload(workload)
        prompts = spec.prompt_tokens.sample(rng, num_requests)
        outputs = spec.output_tokens.sample(rng, num_requests)
        per_machine: dict[str, Mapping[str, float]] = {}
        for machine in (DGX_A100, DGX_H100):
            perf = AnalyticalPerformanceModel(model, machine)
            power = PowerModel(model, machine)
            ttfts, tbts, e2es, energies = [], [], [], []
            for p, o in zip(prompts, outputs):
                p, o = int(p), int(o)
                prompt_latency = perf.ttft(p)
                token_latency = perf.tbt(1, p)
                e2e = perf.e2e_latency(p, o)
                ttfts.append(prompt_latency * 1e3)
                tbts.append(token_latency * 1e3)
                e2es.append(e2e * 1e3)
                decode_time = e2e - prompt_latency
                energies.append(
                    power.prompt_energy_wh(p, prompt_latency) + power.token_energy_wh(1, decode_time)
                )
            e2e_p50_hours = float(np.percentile(e2es, 50)) / 1e3 / 3600.0
            per_machine[machine.name] = {
                "ttft_ms": float(np.percentile(ttfts, 50)),
                "tbt_ms": float(np.percentile(tbts, 50)),
                "e2e_ms": float(np.percentile(e2es, 50)),
                "cost_usd": e2e_p50_hours * machine.cost_per_hour,
                "energy_wh": float(np.percentile(energies, 50)),
            }
        a100, h100 = per_machine["DGX-A100"], per_machine["DGX-H100"]
        per_machine["ratio_h100_over_a100"] = {
            key: (h100[key] / a100[key]) if a100[key] else float("nan") for key in a100
        }
        results[workload] = per_machine
    return results
