"""Request-lifecycle reliability: deadlines, retry budgets, hedging, degradation.

PR 6 gave the fleet realistic *failures* (machine churn, outages,
stragglers, spot revocation) and cluster-level reactions (bans, admission
shedding) — but an individual request still had no reliability semantics: a
request caught on a failed machine silently restarted wherever the scheduler
put it, a shed request was simply dropped, and a request stuck behind a
straggler waited forever.  This module is the request-level layer production
inference front-ends put on top:

* **Deadlines** (:class:`DeadlineConfig`) — per-tenant TTFT and end-to-end
  deadlines, enforced by engine timer events that cancel-and-account expired
  work wherever it sits: queue, prompt pool, mid-decode, or mid-KV-transfer.
  Per-request deadlines on the trace descriptor override the per-tenant
  defaults.
* **Retries** (:class:`RetryPolicy`) — failed attempts are re-submitted
  through the :class:`~repro.fleet.router.FleetRouter` with the failing
  cluster excluded for that attempt, under a per-tenant retry budget and
  exponential backoff with deterministic jitter.  The jitter stream draws
  from a dedicated retry seed, so the trace and fault randomness are
  untouched — retries change *when* work re-enters the fleet, never what the
  fault plan or the workload look like.
* **Hedging** (:class:`HedgeConfig`) — a request still waiting for its first
  token after a rolling-P99-derived delay is speculatively duplicated onto a
  second cluster.  First attempt to finish wins; the loser is cancelled and
  its generated tokens are accounted as hedge waste.
* **Graceful degradation** (:class:`DegradedConfig`) — requests that would
  be shed by admission control (and, optionally, requests that miss their
  TTFT deadline) are served with a truncated output-token budget instead of
  being dropped, and reported separately in goodput.

Every decision is bit-deterministic: lifecycle timers are ordinary engine
events at a fixed priority (after machine finishes, fault injections, and
arrivals — see the engine's priority ladder), the hedge delay is computed
from the router's deterministic rolling windows, and the retry jitter RNG is
consumed in event order.  The census stays closed at the attempt level:
``submitted == completed + shed + expired``, with hedge duplicates accounted
as *attempts* of their logical request, never as requests of their own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

from repro.simulation.events import LIFECYCLE_EVENT_PRIORITY, Event
from repro.simulation.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports this)
    from repro.fleet.fleet import FleetCluster, FleetSimulation

#: Hedge clones carry ``original_id + _CLONE_OFFSET`` as their request id —
#: far above any real trace id, so per-machine queues and transfer registries
#: keyed by request id never collide, and the lifecycle layer can map an
#: attempt back to its logical request with one subtraction.
_CLONE_OFFSET = 1 << 40


@dataclass(frozen=True)
class DeadlineConfig:
    """Per-tenant TTFT / end-to-end deadlines (seconds from arrival).

    Resolution order per request: an explicit deadline on the trace
    descriptor wins, then the tenant's entry here, then the fleet-wide
    default.  ``None`` anywhere means "no deadline of that kind".

    Attributes:
        ttft_s: Fleet-wide default TTFT deadline.
        e2e_s: Fleet-wide default end-to-end deadline.
        ttft_by_tenant: Per-tenant TTFT deadline overrides.
        e2e_by_tenant: Per-tenant end-to-end deadline overrides.
    """

    ttft_s: float | None = None
    e2e_s: float | None = None
    ttft_by_tenant: Mapping[str, float] = field(default_factory=dict)
    e2e_by_tenant: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = [self.ttft_s, self.e2e_s]
        values.extend(self.ttft_by_tenant.values())
        values.extend(self.e2e_by_tenant.values())
        for value in values:
            if value is not None and value <= 0:
                raise ValueError(f"deadlines must be > 0 seconds, got {value}")

    def ttft_for(self, tenant: str) -> float | None:
        """The TTFT deadline applying to ``tenant`` (None = no deadline)."""
        return self.ttft_by_tenant.get(tenant, self.ttft_s)

    def e2e_for(self, tenant: str) -> float | None:
        """The end-to-end deadline applying to ``tenant`` (None = no deadline)."""
        return self.e2e_by_tenant.get(tenant, self.e2e_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, seeded retries with exponential backoff and deterministic jitter.

    Attributes:
        max_retries: Retry budget per logical request (0 = fail fast: the
            first failed attempt expires the request).
        retries_by_tenant: Per-tenant budget overrides.
        backoff_base_s: Backoff before the first retry.
        backoff_multiplier: Growth factor per subsequent retry.
        backoff_max_s: Backoff ceiling.
        jitter_fraction: Each backoff is scaled by a uniform factor in
            ``[1 - jitter, 1 + jitter]`` drawn from the retry RNG (0 disables
            jitter entirely).
        seed: Seed of the dedicated retry RNG.  Independent of the trace and
            fault seeds, so retry timing can be varied without changing the
            workload or the fault plan.
    """

    max_retries: int = 2
    retries_by_tenant: Mapping[str, int] = field(default_factory=dict)
    backoff_base_s: float = 0.25
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        for tenant, budget in self.retries_by_tenant.items():
            if budget < 0:
                raise ValueError(f"tenant {tenant!r} retry budget must be >= 0, got {budget}")
        if self.backoff_base_s <= 0:
            raise ValueError(f"backoff_base_s must be > 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}")

    def budget(self, tenant: str) -> int:
        """Retry budget for a tenant."""
        return self.retries_by_tenant.get(tenant, self.max_retries)

    def backoff_s(self, retry_number: int) -> float:
        """Un-jittered backoff before retry ``retry_number`` (1-based)."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier ** (retry_number - 1),
        )


@dataclass(frozen=True)
class HedgeConfig:
    """Tail-latency hedging: duplicate a slow-starting request onto a second cluster.

    The hedge delay is derived from the fleet's *rolling P99 TTFT* at the
    moment the request is first routed — the classic "defer to the tail"
    rule: hedging before the P99 wastes work on requests that were about to
    start anyway.

    Attributes:
        p99_multiplier: Hedge after ``multiplier x rolling P99 TTFT``.
        min_delay_s: Delay floor (used verbatim while the windows are empty).
        max_delay_s: Delay ceiling.
    """

    p99_multiplier: float = 1.5
    min_delay_s: float = 0.5
    max_delay_s: float = 30.0

    def __post_init__(self) -> None:
        if self.p99_multiplier <= 0:
            raise ValueError(f"p99_multiplier must be > 0, got {self.p99_multiplier}")
        if self.min_delay_s <= 0:
            raise ValueError(f"min_delay_s must be > 0, got {self.min_delay_s}")
        if self.max_delay_s < self.min_delay_s:
            raise ValueError("max_delay_s must be >= min_delay_s")

    def delay_s(self, rolling_p99_ttft_s: float) -> float:
        """Hedge delay given the fleet's current rolling P99 TTFT."""
        return min(self.max_delay_s, max(self.min_delay_s, self.p99_multiplier * rolling_p99_ttft_s))


@dataclass(frozen=True)
class DegradedConfig:
    """Degraded service: truncate output budgets instead of dropping requests.

    Attributes:
        max_output_tokens: Output-token budget of a degraded request.
        on_shed: Serve would-be-shed requests degraded (only requests whose
            budget actually shrinks are admitted; already-short requests
            still shed).
        on_ttft_deadline: On a missed TTFT deadline, restart the request
            degraded instead of expiring it (one degradation per request;
            a second miss expires).
    """

    max_output_tokens: int = 32
    on_shed: bool = True
    on_ttft_deadline: bool = False

    def __post_init__(self) -> None:
        if self.max_output_tokens < 1:
            raise ValueError(f"max_output_tokens must be >= 1, got {self.max_output_tokens}")


class _Lifecycle:
    """Mutable per-logical-request lifecycle state (attempts, timers)."""

    __slots__ = (
        "request",
        "clone",
        "primary_cluster",
        "hedge_cluster",
        "attempts",
        "retries_used",
        "retry_exclude",
        "settled",
        "hedged",
        "ttft_event",
        "e2e_event",
        "hedge_event",
        "retry_event",
    )

    def __init__(self, request: Request) -> None:
        self.request = request
        self.clone: Request | None = None
        self.primary_cluster: str | None = None
        self.hedge_cluster: str | None = None
        self.attempts = 0
        self.retries_used = 0
        self.retry_exclude: str | None = None
        self.settled = False
        self.hedged = False
        self.ttft_event: Event | None = None
        self.e2e_event: Event | None = None
        self.hedge_event: Event | None = None
        self.retry_event: Event | None = None


class ReliabilityCoordinator:
    """Threads deadlines, retries, hedging, and degradation through a fleet.

    Owned by :class:`~repro.fleet.fleet.FleetSimulation` whenever any of the
    four configs is supplied.  The fleet calls in at the lifecycle joints —
    admission (:meth:`register`, :meth:`degrade_admission`), routing
    (:meth:`on_routed`), completion (:meth:`on_attempt_complete`), and
    failure (:meth:`on_attempt_failed`) — and the coordinator schedules its
    own engine events for everything time-driven.

    First-wins invariant: exactly one attempt settles each logical request.
    The winning attempt's telemetry becomes the request's telemetry
    (latencies measured from the original arrival), the losing attempt is
    withdrawn from its cluster, and its generated tokens are accounted as
    wasted work.
    """

    def __init__(
        self,
        fleet: "FleetSimulation",
        retry: RetryPolicy | None = None,
        hedge: HedgeConfig | None = None,
        deadlines: DeadlineConfig | None = None,
        degraded: DegradedConfig | None = None,
    ) -> None:
        self.fleet = fleet
        self.retry = retry
        self.hedge = hedge
        self.deadlines = deadlines
        self.degraded = degraded
        self._rng = random.Random(retry.seed if retry is not None else 0)
        if fleet.engine.sanitizer is not None:
            # Backoff jitter is drawn in event order, inside retry callbacks.
            fleet.engine.sanitizer.register_stream("retry", run_phase=True)
        self._by_id: dict[int, _Lifecycle] = {}
        self.retries_scheduled = 0
        self.retries_fired = 0
        self.retries_exhausted = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_suppressed = 0
        self.hedge_wasted_tokens = 0
        self.expired_wasted_tokens = 0
        self.expired = 0
        self.degraded_admissions = 0
        self.deadline_degradations = 0

    def reset(self) -> None:
        """Reset all per-run state (the fleet calls this at the start of ``run``)."""
        self._rng = random.Random(self.retry.seed if self.retry is not None else 0)
        self._by_id = {}
        self.retries_scheduled = 0
        self.retries_fired = 0
        self.retries_exhausted = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_suppressed = 0
        self.hedge_wasted_tokens = 0
        self.expired_wasted_tokens = 0
        self.expired = 0
        self.degraded_admissions = 0
        self.deadline_degradations = 0

    # -- admission -------------------------------------------------------------------

    def wants_shed_degrade(self, request: Request) -> bool:
        """Whether a would-be-shed request should be admitted degraded instead."""
        return (
            self.degraded is not None
            and self.degraded.on_shed
            and not request.degraded
            and request.output_tokens > self.degraded.max_output_tokens
        )

    def degrade_admission(self, request: Request) -> None:
        """Truncate an unrouted request's output budget (safe: not yet routed)."""
        request.output_tokens = self.degraded.max_output_tokens
        request.degraded = True
        self.degraded_admissions += 1

    def register(self, request: Request) -> None:
        """Start tracking an admitted request; resolve and arm its deadlines."""
        lifecycle = _Lifecycle(request)
        self._by_id[request.request_id] = lifecycle
        ttft, e2e = self._resolve_deadlines(request)
        request.ttft_deadline_s = ttft
        request.e2e_deadline_s = e2e
        engine = self.fleet.engine
        if ttft is not None:
            lifecycle.ttft_event = engine.schedule_at(
                request.arrival_time + ttft,
                lambda lc=lifecycle: self._fire_ttft(lc),
                priority=LIFECYCLE_EVENT_PRIORITY,
                tag=f"ttft-deadline:{request.request_id}",
            )
        if e2e is not None:
            lifecycle.e2e_event = engine.schedule_at(
                request.arrival_time + e2e,
                lambda lc=lifecycle: self._fire_e2e(lc),
                priority=LIFECYCLE_EVENT_PRIORITY,
                tag=f"e2e-deadline:{request.request_id}",
            )

    def _resolve_deadlines(self, request: Request) -> tuple[float | None, float | None]:
        ttft = request.ttft_deadline_s
        e2e = request.e2e_deadline_s
        if self.deadlines is not None:
            if ttft is None:
                ttft = self.deadlines.ttft_for(request.tenant)
            if e2e is None:
                e2e = self.deadlines.e2e_for(request.tenant)
        return ttft, e2e

    # -- routing ---------------------------------------------------------------------

    def on_routed(self, request: Request, cluster_name: str) -> None:
        """Record where an attempt landed; arm the hedge timer on first routing."""
        request_id = request.request_id
        if request_id >= _CLONE_OFFSET:
            lifecycle = self._by_id.get(request_id - _CLONE_OFFSET)
            if lifecycle is not None and lifecycle.clone is request:
                lifecycle.hedge_cluster = cluster_name
            return
        lifecycle = self._by_id.get(request_id)
        if lifecycle is None:
            return
        lifecycle.primary_cluster = cluster_name
        lifecycle.attempts += 1
        if lifecycle.attempts == 1 and self.hedge is not None and not lifecycle.hedged:
            delay = self.hedge.delay_s(self._fleet_p99_ttft())
            lifecycle.hedge_event = self.fleet.engine.schedule_after(
                delay,
                lambda lc=lifecycle: self._fire_hedge(lc),
                priority=LIFECYCLE_EVENT_PRIORITY,
                tag=f"hedge:{request_id}",
            )

    def _fleet_p99_ttft(self) -> float:
        """Worst rolling P99 TTFT across routable clusters (0.0 = no samples)."""
        worst = 0.0
        for cluster in self.fleet.clusters:
            if not (cluster.routable and cluster.available):
                continue
            ttft, _tbt = self.fleet.router.traffic[cluster.name].rolling_p99()
            if ttft > worst:
                worst = ttft
        return worst

    # -- completion (first wins) -------------------------------------------------------

    def on_attempt_complete(self, cluster_name: str, request: Request) -> Request | None:
        """Settle a completing attempt.

        Returns the logical request to count as completed, or ``None`` when
        this completion must not be counted (stale attempt, already settled).
        """
        request_id = request.request_id
        if request_id >= _CLONE_OFFSET:
            lifecycle = self._by_id.get(request_id - _CLONE_OFFSET)
            if lifecycle is None or lifecycle.clone is not request or lifecycle.settled:
                return None
            self._settle(lifecycle)
            self.hedges_won += 1
            primary = lifecycle.request
            if lifecycle.primary_cluster is not None:
                self.hedge_wasted_tokens += self._cancel_attempt(
                    primary, lifecycle.primary_cluster
                )
            primary.adopt_result(request)
            # The logical request takes the clone's census slot on the
            # winning cluster, so each served request appears on exactly one
            # cluster's roster.
            cluster = self._cluster(cluster_name)
            if cluster is not None:
                for index, held in enumerate(cluster.requests):
                    if held is request:
                        cluster.requests[index] = primary
                        break
            lifecycle.clone = None
            lifecycle.hedge_cluster = None
            lifecycle.primary_cluster = cluster_name
            if self.fleet.obs is not None:
                self.fleet.obs.note_hedge_won(primary, cluster_name, self.fleet.engine.now)
            return primary
        lifecycle = self._by_id.get(request_id)
        if lifecycle is None:
            return request  # untracked (no lifecycle layer entry): count normally
        if lifecycle.settled:
            return None
        self._settle(lifecycle)
        if lifecycle.clone is not None:
            self.hedge_wasted_tokens += self._cancel_attempt(
                lifecycle.clone, lifecycle.hedge_cluster
            )
            lifecycle.clone = None
            lifecycle.hedge_cluster = None
        return request

    # -- failure ----------------------------------------------------------------------

    def on_attempt_failed(self, cluster_name: str, request: Request, accounted: bool = False) -> None:
        """Handle an attempt displaced by failure (already reset by the scheduler).

        Args:
            cluster_name: Cluster the attempt failed on.
            request: The reset attempt (a logical request or a hedge clone).
            accounted: True when the caller already withdrew the request from
                the router's books and the cluster roster (outage/revocation
                evacuation does this in batch).
        """
        request_id = request.request_id
        if request_id >= _CLONE_OFFSET:
            lifecycle = self._by_id.get(request_id - _CLONE_OFFSET)
            if lifecycle is None or lifecycle.clone is not request or lifecycle.settled:
                return
            if not accounted:
                self.fleet.router.note_evacuated(cluster_name, [request])
                self._prune(cluster_name, request)
            # Clones are one-shot: a failed hedge attempt is dropped, not
            # retried.  If the primary is also gone (both clusters died in
            # the same batch), the clone's failure re-arms the primary.
            lifecycle.clone = None
            lifecycle.hedge_cluster = None
            if lifecycle.primary_cluster is None and not self._retry_pending(lifecycle):
                self._schedule_retry(lifecycle, cluster_name)
            return
        lifecycle = self._by_id.get(request_id)
        if lifecycle is None:
            # Untracked request (defensive): restart through the router.
            self.fleet._submit_attempt(request)
            return
        if lifecycle.settled:
            return
        if not accounted:
            self.fleet.router.note_evacuated(cluster_name, [request])
            self._prune(cluster_name, request)
        lifecycle.primary_cluster = None
        if lifecycle.clone is not None:
            return  # the live hedge attempt carries the request; no retry burned
        self._schedule_retry(lifecycle, cluster_name)

    def _retry_pending(self, lifecycle: _Lifecycle) -> bool:
        event = lifecycle.retry_event
        return event is not None and event.live

    def _schedule_retry(self, lifecycle: _Lifecycle, failed_cluster: str) -> None:
        request = lifecycle.request
        if self.retry is None:
            # No retry policy: immediate re-route through the fleet router
            # (the pre-lifecycle restart semantics, minus the failed cluster
            # preference — no exclusion, no budget, no backoff).
            self.fleet._submit_attempt(request)
            return
        if lifecycle.retries_used >= self.retry.budget(request.tenant):
            self.retries_exhausted += 1
            self._expire(lifecycle)
            return
        lifecycle.retries_used += 1
        delay = self.retry.backoff_s(lifecycle.retries_used)
        jitter = self.retry.jitter_fraction
        if jitter:
            sanitizer = self.fleet.engine.sanitizer
            if sanitizer is not None:
                sanitizer.note_draw("retry")
            delay *= 1.0 + jitter * (2.0 * self._rng.random() - 1.0)
        lifecycle.retry_exclude = failed_cluster
        lifecycle.retry_event = self.fleet.engine.schedule_after(
            delay,
            lambda lc=lifecycle: self._fire_retry(lc),
            priority=LIFECYCLE_EVENT_PRIORITY,
            tag=f"retry:{request.request_id}",
        )
        self.retries_scheduled += 1
        if self.fleet.obs is not None:
            self.fleet.obs.note_retry_scheduled(request, delay, self.fleet.engine.now)

    def _fire_retry(self, lifecycle: _Lifecycle) -> None:
        lifecycle.retry_event = None
        if lifecycle.settled:
            return
        self.retries_fired += 1
        exclude = lifecycle.retry_exclude
        lifecycle.retry_exclude = None
        self.fleet._submit_attempt(lifecycle.request, exclude=exclude)

    # -- deadlines ---------------------------------------------------------------------

    def _fire_ttft(self, lifecycle: _Lifecycle) -> None:
        lifecycle.ttft_event = None
        if lifecycle.settled:
            return
        first = lifecycle.request.first_token_time
        if first is None and lifecycle.clone is not None:
            first = lifecycle.clone.first_token_time
        if first is not None:
            return  # deadline met
        degraded = self.degraded
        if (
            degraded is not None
            and degraded.on_ttft_deadline
            and not lifecycle.request.degraded
            and degraded.max_output_tokens < lifecycle.request.output_tokens
        ):
            self._degrade_restart(lifecycle)
        else:
            self._expire(lifecycle)

    def _fire_e2e(self, lifecycle: _Lifecycle) -> None:
        lifecycle.e2e_event = None
        if lifecycle.settled:
            return
        self._expire(lifecycle)

    def _degrade_restart(self, lifecycle: _Lifecycle) -> None:
        """Serve a TTFT-deadline-missing request degraded: restart truncated.

        The request has produced no token (the TTFT timer checked), so the
        restart discards only queueing progress.  In-place truncation of a
        routed request would corrupt the machines' token accounting, so the
        attempt is withdrawn and resubmitted with the smaller budget.
        """
        request = lifecycle.request
        if lifecycle.clone is not None:
            self.hedge_wasted_tokens += self._cancel_attempt(
                lifecycle.clone, lifecycle.hedge_cluster
            )
            lifecycle.clone = None
            lifecycle.hedge_cluster = None
        if lifecycle.primary_cluster is not None:
            self._cancel_attempt(request, lifecycle.primary_cluster)
            lifecycle.primary_cluster = None
        if lifecycle.retry_event is not None:
            self.fleet.engine.cancel(lifecycle.retry_event)
            lifecycle.retry_event = None
        request.reset_for_restart()
        request.output_tokens = self.degraded.max_output_tokens
        request.degraded = True
        self.deadline_degradations += 1
        self.fleet._submit_attempt(request)

    def _expire(self, lifecycle: _Lifecycle) -> None:
        """Cancel-and-account a request wherever its attempts sit."""
        self._settle(lifecycle)
        request = lifecycle.request
        if lifecycle.clone is not None:
            self.expired_wasted_tokens += self._cancel_attempt(
                lifecycle.clone, lifecycle.hedge_cluster
            )
            lifecycle.clone = None
            lifecycle.hedge_cluster = None
        if lifecycle.primary_cluster is not None:
            self.expired_wasted_tokens += self._cancel_attempt(
                request, lifecycle.primary_cluster
            )
            lifecycle.primary_cluster = None
        request.expire(self.fleet.engine.now)
        self.expired += 1
        self.fleet._note_expired(request)

    # -- hedging -----------------------------------------------------------------------

    def _fire_hedge(self, lifecycle: _Lifecycle) -> None:
        lifecycle.hedge_event = None
        if lifecycle.settled or lifecycle.hedged:
            return
        request = lifecycle.request
        if request.first_token_time is not None:
            return  # the primary started; no tail to hedge against
        if lifecycle.primary_cluster is None:
            # Mid-backoff: the retry path owns recovery; hedging a request
            # that is nowhere would be a second retry in disguise.
            self.hedges_suppressed += 1
            return
        fleet = self.fleet
        if fleet.admission is not None and fleet.router.total_outstanding() >= (
            fleet.admission.shed_threshold(request.tenant)
        ):
            self.hedges_suppressed += 1  # no speculative work under overload
            return
        alternatives = [
            c
            for c in fleet.clusters
            if c.routable and c.available and c.name != lifecycle.primary_cluster
        ]
        if not alternatives:
            self.hedges_suppressed += 1
            return
        clone = Request(
            descriptor=replace(
                request.descriptor, request_id=request.request_id + _CLONE_OFFSET
            )
        )
        # Mirror any degraded truncation so both attempts race to the same
        # finish line (identical output budgets).
        clone.output_tokens = request.output_tokens
        clone.degraded = request.degraded
        lifecycle.clone = clone
        lifecycle.hedged = True
        self.hedges_launched += 1
        fleet._submit_attempt(clone, exclude=lifecycle.primary_cluster)
        if fleet.obs is not None:
            # ``on_routed`` (called inside ``_submit_attempt``) has recorded
            # where the clone landed by now.
            fleet.obs.note_hedge(request, lifecycle.hedge_cluster or "", fleet.engine.now)

    # -- internals ---------------------------------------------------------------------

    def _settle(self, lifecycle: _Lifecycle) -> None:
        """Mark the lifecycle decided and tombstone every pending timer.

        Eager cancellation matters beyond hygiene: an uncancelled no-op
        deadline timer would still advance the engine clock past the last
        real work, inflating the run's duration and machine-hour accounting.
        """
        lifecycle.settled = True
        engine = self.fleet.engine
        for name in ("ttft_event", "e2e_event", "hedge_event", "retry_event"):
            event = getattr(lifecycle, name)
            if event is not None:
                engine.cancel(event)
                setattr(lifecycle, name, None)

    def _cancel_attempt(self, request: Request, cluster_name: str | None) -> int:
        """Withdraw a losing/expired attempt from its cluster.

        Returns the number of tokens the attempt had generated (the wasted
        work), read after withdrawal so deferred columnar state is settled.
        """
        cluster = self._cluster(cluster_name)
        if cluster is not None:
            cluster.scheduler.cancel_request(request)
            self.fleet.router.note_evacuated(cluster_name, [request])
            self._prune(cluster_name, request)
        return len(request.token_times)

    def _cluster(self, cluster_name: str | None) -> "FleetCluster | None":
        if cluster_name is None:
            return None
        for cluster in self.fleet.clusters:
            if cluster.name == cluster_name:
                return cluster
        return None

    def _prune(self, cluster_name: str, request: Request) -> None:
        """Drop one request from a cluster's routed roster (identity match)."""
        cluster = self._cluster(cluster_name)
        if cluster is None:
            return
        for index, held in enumerate(cluster.requests):
            if held is request:
                del cluster.requests[index]
                return

    # -- reporting ---------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly lifecycle statistics for provenance and smoke checks."""
        return {
            "retries_scheduled": self.retries_scheduled,
            "retries_fired": self.retries_fired,
            "retries_exhausted": self.retries_exhausted,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_suppressed": self.hedges_suppressed,
            "hedge_wasted_tokens": self.hedge_wasted_tokens,
            "expired_wasted_tokens": self.expired_wasted_tokens,
            "expired": self.expired,
            "degraded_admissions": self.degraded_admissions,
            "deadline_degradations": self.deadline_degradations,
        }
