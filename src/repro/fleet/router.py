"""Fleet-level request routing: the global front-end over many clusters.

A deployment serving millions of users runs *fleets* of phase-split clusters
behind one global router.  :class:`FleetRouter` is that front-end inside the
simulator: every arriving request is assigned to exactly one member cluster,
whose own cluster-level scheduler (§IV-A) then routes it to machines.  Four
policies are provided:

* ``"weighted-rr"`` — smooth weighted round-robin (the classic nginx
  algorithm), weights proportional to cluster machine counts.  Oblivious to
  load; the baseline the informed policies are compared against.
* ``"least-outstanding"`` — route to the cluster with the fewest in-flight
  requests.  O(1) signals maintained by submit/complete callbacks.
* ``"jsq"`` — queue-probe Join-the-Shortest-Queue: probe every cluster's
  machines for total pending tokens and pick the smallest backlog.  The most
  informed instantaneous signal, at O(machines) probe cost per arrival.
* ``"slo-feedback"`` — least-outstanding scaled by each cluster's *rolling
  P99 TTFT and TBT* over a sliding window of recent completions: clusters
  whose tail latency degrades (slow machines, draining, recovering from
  failures) receive proportionally less traffic until their tail recovers.

Routing is tenant-aware: the router tracks per-tenant traffic and honors
optional tenant→cluster pins (e.g. a tenant contractually confined to one
region's cluster).  All policies are deterministic — ties break on cluster
name — so fleet simulations stay bit-reproducible under a seed and under
decode fast-forwarding on/off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.cluster_scheduler import total_queue_load
from repro.simulation.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports router)
    from repro.fleet.fleet import FleetCluster

#: Router policies, in the order they are documented above.
ROUTER_POLICIES = ("weighted-rr", "least-outstanding", "jsq", "slo-feedback")

#: Completions remembered per cluster for the slo-feedback rolling window.
DEFAULT_SLO_WINDOW = 128


def _p99(values) -> float:
    """P99 by the nearest-rank method over a small sample window."""
    ordered = sorted(values)
    rank = -(-99 * len(ordered) // 100) - 1  # ceil(0.99 * n) as a 0-based index
    return ordered[rank]


@dataclass
class ClusterTraffic:
    """Per-cluster routing state maintained by the router.

    Attributes:
        window: Completions remembered in the rolling latency windows.
        submitted: Requests routed to the cluster so far.
        completed: Requests the cluster finished.
        by_tenant: Requests routed, grouped by tenant tag.
        ttft_window: Recent TTFT samples (seconds) for slo-feedback.
        tbt_window: Recent mean-TBT samples (seconds) for slo-feedback.
    """

    window: int = DEFAULT_SLO_WINDOW
    submitted: int = 0
    completed: int = 0
    by_tenant: dict[str, int] = field(default_factory=dict)
    ttft_window: deque = field(init=False, repr=False)
    tbt_window: deque = field(init=False, repr=False)
    _p99_cache: tuple[float, float] | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.ttft_window = deque(maxlen=self.window)
        self.tbt_window = deque(maxlen=self.window)

    @property
    def outstanding(self) -> int:
        """Requests routed to the cluster that have not completed."""
        return self.submitted - self.completed

    def note_submitted(self, request: Request) -> None:
        self.submitted += 1
        self.by_tenant[request.tenant] = self.by_tenant.get(request.tenant, 0) + 1

    def note_completed(self, request: Request) -> None:
        self.completed += 1
        if request.ttft is not None:
            self.ttft_window.append(request.ttft)
            self._p99_cache = None
        mean_tbt = request.mean_tbt
        if mean_tbt is not None:
            self.tbt_window.append(mean_tbt)
            self._p99_cache = None

    def rolling_p99(self) -> tuple[float, float]:
        """``(p99_ttft_s, p99_tbt_s)`` over the windows (0.0 when no samples).

        Cached between completions so back-to-back arrivals don't re-sort an
        unchanged window.
        """
        if self._p99_cache is None:
            ttft = _p99(self.ttft_window) if self.ttft_window else 0.0
            tbt = _p99(self.tbt_window) if self.tbt_window else 0.0
            self._p99_cache = (ttft, tbt)
        return self._p99_cache


class FleetRouter:
    """Routes arriving requests to clusters under a pluggable policy.

    Args:
        policy: One of :data:`ROUTER_POLICIES`.
        tenant_pins: Optional ``{tenant: cluster_name}`` constraints; a
            pinned tenant's requests only ever go to that cluster (it must
            stay routable, or routing raises).
        slo_window: Completions remembered per cluster for the rolling
            P99 windows of the ``"slo-feedback"`` policy.

    Raises:
        ValueError: for an unknown policy.
    """

    def __init__(
        self,
        policy: str = "least-outstanding",
        tenant_pins: Mapping[str, str] | None = None,
        slo_window: int = DEFAULT_SLO_WINDOW,
    ) -> None:
        if policy not in ROUTER_POLICIES:
            raise ValueError(f"policy must be one of {ROUTER_POLICIES}, got {policy!r}")
        if slo_window < 1:
            raise ValueError(f"slo_window must be >= 1, got {slo_window}")
        self.policy = policy
        self.tenant_pins = dict(tenant_pins or {})
        self.slo_window = slo_window
        self._clusters: list["FleetCluster"] = []
        self.traffic: dict[str, ClusterTraffic] = {}
        #: Smooth weighted-RR state: cluster name -> current credit.
        self._wrr_credit: dict[str, float] = {}
        #: Fleet-wide best rolling P99s, refreshed once per slo-feedback
        #: routing decision (state instead of a closure so the per-arrival
        #: probe allocates nothing — same rationale as the precomputed JSQ
        #: key functions in the cluster scheduler).
        self._fleet_best: tuple[float, float] = (0.0, 0.0)

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self, clusters: list["FleetCluster"]) -> None:
        """Register the fleet's member clusters (done by the fleet simulation)."""
        self._clusters = list(clusters)
        for cluster in self._clusters:
            self.traffic[cluster.name] = ClusterTraffic(window=self.slo_window)
            self._wrr_credit[cluster.name] = 0.0
        for tenant, name in self.tenant_pins.items():
            if name not in self.traffic:
                raise ValueError(f"tenant {tenant!r} pinned to unknown cluster {name!r}")

    # -- routing -----------------------------------------------------------------------

    def route(self, request: Request) -> "FleetCluster":
        """Pick the cluster that will serve ``request`` and record the decision.

        Raises:
            RuntimeError: when no routable cluster exists (or a pinned
                tenant's cluster is not routable).
        """
        pinned = self.tenant_pins.get(request.tenant)
        if pinned is not None:
            for cluster in self._clusters:
                if cluster.name == pinned and cluster.routable:
                    self.traffic[cluster.name].note_submitted(request)
                    return cluster
            raise RuntimeError(
                f"tenant {request.tenant!r} is pinned to cluster {pinned!r}, which is not routable"
            )
        candidates = [c for c in self._clusters if c.routable]
        if not candidates:
            raise RuntimeError("fleet has no routable cluster")
        if self.policy == "weighted-rr":
            choice = self._pick_weighted_rr(candidates)
        elif self.policy == "jsq":
            choice = self._pick_min(candidates, self._probe_pending_tokens)
        elif self.policy == "slo-feedback":
            # The fleet-wide best tail is invariant within one routing
            # decision: computing it once keeps the probe O(clusters).
            self._fleet_best = self._fleet_best_p99()
            choice = self._pick_min(candidates, self._slo_feedback_score)
        else:  # least-outstanding
            choice = self._pick_min(candidates, self._outstanding_score)
        self.traffic[choice.name].note_submitted(request)
        return choice

    def note_completed(self, cluster_name: str, request: Request) -> None:
        """Record a completion (wired to each cluster scheduler's hook)."""
        self.traffic[cluster_name].note_completed(request)

    # -- policy internals --------------------------------------------------------------

    def _pick_min(self, candidates, score) -> "FleetCluster":
        best = None
        best_score = None
        for cluster in candidates:
            cluster_score = score(cluster)
            if best_score is None or cluster_score < best_score or (
                cluster_score == best_score and cluster.name < best.name
            ):
                best = cluster
                best_score = cluster_score
        return best

    def _pick_weighted_rr(self, candidates) -> "FleetCluster":
        """Smooth weighted round-robin over machine-count weights."""
        total = 0.0
        best = None
        for cluster in candidates:
            weight = float(cluster.num_machines)
            total += weight
            credit = self._wrr_credit[cluster.name] + weight
            self._wrr_credit[cluster.name] = credit
            if best is None or credit > self._wrr_credit[best.name] or (
                credit == self._wrr_credit[best.name] and cluster.name < best.name
            ):
                best = cluster
        self._wrr_credit[best.name] -= total
        return best

    @staticmethod
    def _probe_pending_tokens(cluster: "FleetCluster") -> float:
        """Queue-probe: total pending tokens across the cluster's machines."""
        return float(sum(total_queue_load(m) for m in cluster.scheduler.machines))

    def _outstanding_score(self, cluster: "FleetCluster") -> float:
        """In-flight requests (least-outstanding key)."""
        return float(self.traffic[cluster.name].outstanding)

    def _slo_feedback_score(self, cluster: "FleetCluster") -> float:
        """Outstanding load scaled by rolling tail-latency degradation.

        The degradation factor compares the cluster's rolling P99 TTFT/TBT
        against the healthiest routable cluster (``self._fleet_best``,
        refreshed once per routing decision); a cluster 2x worse on its tail
        receives half the traffic share at equal queue depth.  Clusters with
        no samples yet are treated as healthy.
        """
        best_ttft, best_tbt = self._fleet_best
        ttft, tbt = self.traffic[cluster.name].rolling_p99()
        degradation = 1.0
        if best_ttft > 0 and ttft > 0:
            degradation = max(degradation, ttft / best_ttft)
        if best_tbt > 0 and tbt > 0:
            degradation = max(degradation, tbt / best_tbt)
        return (self.traffic[cluster.name].outstanding + 1.0) * degradation

    def _fleet_best_p99(self) -> tuple[float, float]:
        """Smallest non-zero rolling P99 TTFT/TBT across routable clusters."""
        best_ttft = 0.0
        best_tbt = 0.0
        for cluster in self._clusters:
            if not cluster.routable:
                continue
            ttft, tbt = self.traffic[cluster.name].rolling_p99()
            if ttft > 0 and (best_ttft == 0 or ttft < best_ttft):
                best_ttft = ttft
            if tbt > 0 and (best_tbt == 0 or tbt < best_tbt):
                best_tbt = tbt
        return best_ttft, best_tbt

    # -- reporting ---------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly routing statistics (per cluster and per tenant)."""
        return {
            "policy": self.policy,
            "clusters": {
                name: {
                    "submitted": traffic.submitted,
                    "completed": traffic.completed,
                    "outstanding": traffic.outstanding,
                    "by_tenant": dict(sorted(traffic.by_tenant.items())),
                }
                for name, traffic in sorted(self.traffic.items())
            },
        }
