"""Fleet-level request routing: the global front-end over many clusters.

A deployment serving millions of users runs *fleets* of phase-split clusters
behind one global router.  :class:`FleetRouter` is that front-end inside the
simulator: every arriving request is assigned to exactly one member cluster,
whose own cluster-level scheduler (§IV-A) then routes it to machines.  Four
policies are provided:

* ``"weighted-rr"`` — smooth weighted round-robin (the classic nginx
  algorithm), weights proportional to cluster machine counts.  Oblivious to
  load; the baseline the informed policies are compared against.
* ``"least-outstanding"`` — route to the cluster with the fewest in-flight
  requests.  O(1) signals maintained by submit/complete callbacks.
* ``"jsq"`` — queue-probe Join-the-Shortest-Queue: probe every cluster's
  machines for total pending tokens and pick the smallest backlog.  The most
  informed instantaneous signal, at O(machines) probe cost per arrival.
* ``"slo-feedback"`` — least-outstanding scaled by each cluster's *rolling
  P99 TTFT and TBT* over a sliding window of recent completions: clusters
  whose tail latency degrades (slow machines, draining, recovering from
  failures) receive proportionally less traffic until their tail recovers.

Routing is tenant-aware: the router tracks per-tenant traffic and honors
optional tenant→cluster pins (e.g. a tenant contractually confined to one
region's cluster).  All policies are deterministic — ties break on cluster
name — so fleet simulations stay bit-reproducible under a seed and under
decode fast-forwarding on/off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.cluster_scheduler import total_queue_load
from repro.simulation.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports router)
    from repro.fleet.fleet import FleetCluster

#: Router policies, in the order they are documented above.
ROUTER_POLICIES = ("weighted-rr", "least-outstanding", "jsq", "slo-feedback")

#: Completions remembered per cluster for the slo-feedback rolling window.
DEFAULT_SLO_WINDOW = 128


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs for the router's per-cluster reliability feedback loop.

    The router tracks a rolling error window per cluster (SLO-violating
    completions and machine failures).  A cluster whose error fraction
    crosses ``ban_threshold`` is *banned* — removed from routing — for
    ``cooldown_s``, then re-admitted on *probation*: it receives traffic
    again, and its first ``probation_requests`` outcomes decide whether it
    returns to healthy rotation or is banned again.

    Attributes:
        window: Outcomes remembered per cluster while healthy.
        ban_threshold: Error fraction that triggers a ban.
        min_observations: Outcomes required before a ban can trigger (avoids
            banning on one early unlucky request).
        cooldown_s: Ban duration before probationary re-admission.
        probation_requests: Outcomes observed on probation before deciding.
        probation_threshold: Error fraction on probation that re-bans.
        ttft_slowdown_limit: A completion whose TTFT exceeds this multiple of
            the uncontended reference is counted as an error.
        tbt_slowdown_limit: Same for the mean TBT.
    """

    window: int = 64
    ban_threshold: float = 0.5
    min_observations: int = 16
    cooldown_s: float = 30.0
    probation_requests: int = 16
    probation_threshold: float = 0.5
    ttft_slowdown_limit: float = 6.0
    tbt_slowdown_limit: float = 5.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.ban_threshold <= 1.0:
            raise ValueError(f"ban_threshold must be in (0, 1], got {self.ban_threshold}")
        if not 0.0 < self.probation_threshold <= 1.0:
            raise ValueError(
                f"probation_threshold must be in (0, 1], got {self.probation_threshold}"
            )
        if self.min_observations < 1 or self.min_observations > self.window:
            raise ValueError(
                f"min_observations must be in [1, window], got {self.min_observations}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {self.cooldown_s}")
        if self.probation_requests < 1:
            raise ValueError(f"probation_requests must be >= 1, got {self.probation_requests}")
        if self.ttft_slowdown_limit <= 1.0 or self.tbt_slowdown_limit <= 1.0:
            raise ValueError("slowdown limits must be > 1")


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-tenant admission control under fleet overload.

    When the fleet's total outstanding requests reach a tenant's shed
    threshold, that tenant's new arrivals are *shed* (rejected up front)
    instead of queued.  Higher-priority tenants get proportionally more
    headroom — ``threshold = max_outstanding * (1 + priority *
    shed_headroom)`` — so under mounting overload the lowest-priority
    tenants are shed first and the highest-priority tenants last.

    Attributes:
        max_outstanding: Fleet-wide outstanding requests at which a
            priority-0 tenant starts shedding.
        tenant_priorities: Tenant tag -> priority (higher = shed later).
        default_priority: Priority of tenants not listed.
        shed_headroom: Extra headroom fraction granted per priority level.
    """

    max_outstanding: int
    tenant_priorities: Mapping[str, int] = field(default_factory=dict)
    default_priority: int = 0
    shed_headroom: float = 0.5

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError(f"max_outstanding must be >= 1, got {self.max_outstanding}")
        if self.shed_headroom < 0:
            raise ValueError(f"shed_headroom must be >= 0, got {self.shed_headroom}")
        for tenant, priority in self.tenant_priorities.items():
            if priority < 0:
                raise ValueError(f"tenant {tenant!r} priority must be >= 0, got {priority}")

    def priority(self, tenant: str) -> int:
        """Shedding priority of a tenant (higher = shed later)."""
        return self.tenant_priorities.get(tenant, self.default_priority)

    def shed_threshold(self, tenant: str) -> float:
        """Fleet outstanding count at which this tenant's arrivals shed."""
        return self.max_outstanding * (1.0 + self.priority(tenant) * self.shed_headroom)


class ClusterHealth:
    """Rolling reliability state of one cluster (healthy/banned/probation)."""

    __slots__ = (
        "config",
        "state",
        "outcomes",
        "errors",
        "banned_until_s",
        "probation_seen",
        "probation_errors",
        "bans",
        "observer",
    )

    def __init__(self, config: ReliabilityConfig) -> None:
        self.config = config
        self.state = "healthy"
        self.outcomes: deque[bool] = deque(maxlen=config.window)
        self.errors = 0
        self.banned_until_s = 0.0
        self.probation_seen = 0
        self.probation_errors = 0
        self.bans = 0
        #: Optional ``(state, now)`` callback fired on every state change
        #: (wired by :meth:`FleetRouter.observe_health`; observe-only).
        self.observer: Callable[[str, float], None] | None = None

    def is_banned(self, now: float) -> bool:
        """Whether the cluster is currently banned; expires lapsed bans."""
        if self.state == "banned":
            if now >= self.banned_until_s:
                self._enter_probation(now)
                return False
            return True
        return False

    def record(self, error: bool, now: float) -> None:
        """Fold one outcome (completion or failure) into the state machine."""
        if self.state == "banned":
            if now < self.banned_until_s:
                return  # straggler completions during a ban carry no signal
            self._enter_probation(now)
        if self.state == "probation":
            self.probation_seen += 1
            if error:
                self.probation_errors += 1
            if self.probation_seen >= self.config.probation_requests:
                if self.probation_errors / self.probation_seen >= self.config.probation_threshold:
                    self._ban(now)
                else:
                    self._reset_healthy(now)
            return
        outcomes = self.outcomes
        if len(outcomes) == outcomes.maxlen and outcomes[0]:
            self.errors -= 1
        outcomes.append(error)
        if error:
            self.errors += 1
        if (
            len(outcomes) >= self.config.min_observations
            and self.errors / len(outcomes) >= self.config.ban_threshold
        ):
            self._ban(now)

    def _ban(self, now: float) -> None:
        self.state = "banned"
        self.banned_until_s = now + self.config.cooldown_s
        self.bans += 1
        self.outcomes.clear()
        self.errors = 0
        self.probation_seen = 0
        self.probation_errors = 0
        if self.observer is not None:
            self.observer("banned", now)

    def _enter_probation(self, now: float) -> None:
        self.state = "probation"
        self.probation_seen = 0
        self.probation_errors = 0
        if self.observer is not None:
            self.observer("probation", now)

    def _reset_healthy(self, now: float) -> None:
        self.state = "healthy"
        self.outcomes.clear()
        self.errors = 0
        self.probation_seen = 0
        self.probation_errors = 0
        if self.observer is not None:
            self.observer("healthy", now)


def _p99(values) -> float:
    """P99 by the nearest-rank method over a small sample window."""
    ordered = sorted(values)
    rank = -(-99 * len(ordered) // 100) - 1  # ceil(0.99 * n) as a 0-based index
    return ordered[rank]


@dataclass
class ClusterTraffic:
    """Per-cluster routing state maintained by the router.

    Attributes:
        window: Completions remembered in the rolling latency windows.
        submitted: Requests routed to the cluster so far.
        completed: Requests the cluster finished.
        by_tenant: Requests routed, grouped by tenant tag.
        ttft_window: Recent TTFT samples (seconds) for slo-feedback.
        tbt_window: Recent mean-TBT samples (seconds) for slo-feedback.
    """

    window: int = DEFAULT_SLO_WINDOW
    submitted: int = 0
    completed: int = 0
    by_tenant: dict[str, int] = field(default_factory=dict)
    ttft_window: deque = field(init=False, repr=False)
    tbt_window: deque = field(init=False, repr=False)
    _p99_cache: tuple[float, float] | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.ttft_window = deque(maxlen=self.window)
        self.tbt_window = deque(maxlen=self.window)

    @property
    def outstanding(self) -> int:
        """Requests routed to the cluster that have not completed."""
        return self.submitted - self.completed

    def note_submitted(self, request: Request) -> None:
        self.submitted += 1
        self.by_tenant[request.tenant] = self.by_tenant.get(request.tenant, 0) + 1

    def note_withdrawn(self, request: Request) -> None:
        """Un-count a routed request that was evacuated before completing."""
        self.submitted -= 1
        count = self.by_tenant.get(request.tenant, 0) - 1
        if count > 0:
            self.by_tenant[request.tenant] = count
        else:
            self.by_tenant.pop(request.tenant, None)

    def note_completed(self, request: Request) -> None:
        self.completed += 1
        if request.ttft is not None:
            self.ttft_window.append(request.ttft)
            self._p99_cache = None
        mean_tbt = request.mean_tbt
        if mean_tbt is not None:
            self.tbt_window.append(mean_tbt)
            self._p99_cache = None

    def rolling_p99(self) -> tuple[float, float]:
        """``(p99_ttft_s, p99_tbt_s)`` over the windows (0.0 when no samples).

        Cached between completions so back-to-back arrivals don't re-sort an
        unchanged window.
        """
        if self._p99_cache is None:
            ttft = _p99(self.ttft_window) if self.ttft_window else 0.0
            tbt = _p99(self.tbt_window) if self.tbt_window else 0.0
            self._p99_cache = (ttft, tbt)
        return self._p99_cache


class FleetRouter:
    """Routes arriving requests to clusters under a pluggable policy.

    Args:
        policy: One of :data:`ROUTER_POLICIES`.
        tenant_pins: Optional ``{tenant: cluster_name}`` constraints; a
            pinned tenant's requests only ever go to that cluster (it must
            stay routable, or routing raises).
        slo_window: Completions remembered per cluster for the rolling
            P99 windows of the ``"slo-feedback"`` policy.
        reliability: Optional per-cluster error tracking with auto-ban,
            cool-down, and probationary re-admission (see
            :class:`ReliabilityConfig`).  Classifying completions as errors
            additionally needs :attr:`reference_model` to be set.

    Raises:
        ValueError: for an unknown policy.
    """

    def __init__(
        self,
        policy: str = "least-outstanding",
        tenant_pins: Mapping[str, str] | None = None,
        slo_window: int = DEFAULT_SLO_WINDOW,
        reliability: "ReliabilityConfig | None" = None,
    ) -> None:
        if policy not in ROUTER_POLICIES:
            raise ValueError(f"policy must be one of {ROUTER_POLICIES}, got {policy!r}")
        if slo_window < 1:
            raise ValueError(f"slo_window must be >= 1, got {slo_window}")
        self.policy = policy
        self.tenant_pins = dict(tenant_pins or {})
        self.slo_window = slo_window
        self.reliability = reliability
        #: Uncontended performance model latency classification compares
        #: against (set by the fleet simulation when reliability is on).
        self.reference_model = None
        self._clusters: list["FleetCluster"] = []
        self.traffic: dict[str, ClusterTraffic] = {}
        self._health: dict[str, ClusterHealth] = {}
        self._engine = None
        #: Smooth weighted-RR state: cluster name -> current credit.
        self._wrr_credit: dict[str, float] = {}
        #: Fleet-wide best rolling P99s, refreshed once per slo-feedback
        #: routing decision (state instead of a closure so the per-arrival
        #: probe allocates nothing — same rationale as the precomputed JSQ
        #: key functions in the cluster scheduler).
        self._fleet_best: tuple[float, float] = (0.0, 0.0)

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self, clusters: list["FleetCluster"], engine=None) -> None:
        """Register the fleet's member clusters (done by the fleet simulation).

        Args:
            clusters: The fleet's member clusters.
            engine: Simulation engine providing the clock for ban cool-downs
                (required only when reliability tracking is configured).
        """
        self._clusters = list(clusters)
        self._engine = engine
        for cluster in self._clusters:
            self.traffic[cluster.name] = ClusterTraffic(window=self.slo_window)
            self._wrr_credit[cluster.name] = 0.0
            if self.reliability is not None:
                self._health[cluster.name] = ClusterHealth(self.reliability)
        for tenant, name in self.tenant_pins.items():
            if name not in self.traffic:
                raise ValueError(f"tenant {tenant!r} pinned to unknown cluster {name!r}")

    def _now(self) -> float:
        return self._engine.now if self._engine is not None else 0.0

    # -- routing -----------------------------------------------------------------------

    def route(self, request: Request, exclude=None) -> "FleetCluster":
        """Pick the cluster that will serve ``request`` and record the decision.

        Args:
            request: The request to place.
            exclude: Optional cluster name (or collection of names) to avoid
                for this attempt — the request-lifecycle layer excludes the
                cluster a retry just failed on.  The exclusion is *soft*:
                when every other cluster is unroutable the excluded cluster
                is used anyway (a slow retry beats a dropped request), and
                tenant pins override it entirely.

        Raises:
            RuntimeError: when no routable cluster exists (or a pinned
                tenant's cluster is not routable).
        """
        pinned = self.tenant_pins.get(request.tenant)
        if pinned is not None:
            # A pin overrides reliability bans (the tenant has nowhere else
            # to go) but not availability — an outaged cluster serves nobody.
            for cluster in self._clusters:
                if cluster.name == pinned and cluster.routable and getattr(cluster, "available", True):
                    self.traffic[cluster.name].note_submitted(request)
                    return cluster
            raise RuntimeError(
                f"tenant {request.tenant!r} is pinned to cluster {pinned!r}, which is not routable"
            )
        candidates = [
            c for c in self._clusters if c.routable and getattr(c, "available", True)
        ]
        if not candidates:
            raise RuntimeError("fleet has no routable cluster")
        if exclude:
            excluded = {exclude} if isinstance(exclude, str) else set(exclude)
            filtered = [c for c in candidates if c.name not in excluded]
            if filtered:
                candidates = filtered
        if self._health:
            # Availability beats reliability: prefer unbanned clusters, but
            # when every candidate is banned, serve from the banned ones
            # rather than dropping traffic on the floor.
            now = self._now()
            unbanned = [c for c in candidates if not self._health[c.name].is_banned(now)]
            if unbanned:
                candidates = unbanned
        if self.policy == "weighted-rr":
            choice = self._pick_weighted_rr(candidates)
        elif self.policy == "jsq":
            choice = self._pick_min(candidates, self._probe_pending_tokens)
        elif self.policy == "slo-feedback":
            # The fleet-wide best tail is invariant within one routing
            # decision: computing it once keeps the probe O(clusters).
            self._fleet_best = self._fleet_best_p99()
            choice = self._pick_min(candidates, self._slo_feedback_score)
        else:  # least-outstanding
            choice = self._pick_min(candidates, self._outstanding_score)
        self.traffic[choice.name].note_submitted(request)
        return choice

    def note_completed(self, cluster_name: str, request: Request) -> None:
        """Record a completion (wired to each cluster scheduler's hook)."""
        self.traffic[cluster_name].note_completed(request)
        health = self._health.get(cluster_name)
        if health is not None:
            health.record(self._is_error(request), self._now())

    def note_failure(self, cluster_name: str) -> None:
        """Record a machine failure on a cluster as a reliability error."""
        health = self._health.get(cluster_name)
        if health is not None:
            health.record(True, self._now())

    def note_evacuated(self, cluster_name: str, requests) -> None:
        """Un-count requests evacuated from a cluster before rerouting them.

        Keeps ``outstanding`` truthful: the evacuated request will be
        re-submitted (and counted) on whichever cluster it lands on next.
        """
        traffic = self.traffic[cluster_name]
        for request in requests:
            traffic.note_withdrawn(request)

    def observe_health(self, callback: Callable[[str, str, float], None]) -> None:
        """Subscribe ``callback(cluster_name, state, now)`` to health transitions.

        Used by the observability plane to trace ban/probation/recovery
        events as they happen (the state machine itself stores no history).
        No-op without reliability tracking.
        """
        for name, health in self._health.items():
            health.observer = (
                lambda state, now, _name=name: callback(_name, state, now)
            )

    def total_outstanding(self) -> int:
        """Fleet-wide in-flight requests (admission-control pressure signal)."""
        return sum(traffic.outstanding for traffic in self.traffic.values())

    @property
    def bans_issued(self) -> int:
        """Total reliability bans issued across the fleet so far."""
        return sum(health.bans for health in self._health.values())

    def _is_error(self, request: Request) -> bool:
        """Classify a completion as an SLO-violating error via the reference model."""
        reliability = self.reliability
        reference = self.reference_model
        if reference is None or reliability is None:
            return False
        ttft = request.ttft
        if ttft is not None:
            reference_ttft = reference.ttft(request.prompt_tokens)
            if reference_ttft > 0 and ttft / reference_ttft > reliability.ttft_slowdown_limit:
                return True
        mean_tbt = request.mean_tbt
        if mean_tbt is not None:
            reference_tbt = reference.tbt(1)
            if reference_tbt > 0 and mean_tbt / reference_tbt > reliability.tbt_slowdown_limit:
                return True
        return False

    # -- policy internals --------------------------------------------------------------

    def _pick_min(self, candidates, score) -> "FleetCluster":
        best = None
        best_score = None
        for cluster in candidates:
            cluster_score = score(cluster)
            if best_score is None or cluster_score < best_score or (
                cluster_score == best_score and cluster.name < best.name
            ):
                best = cluster
                best_score = cluster_score
        return best

    def _pick_weighted_rr(self, candidates) -> "FleetCluster":
        """Smooth weighted round-robin over machine-count weights."""
        total = 0.0
        best = None
        for cluster in candidates:
            weight = float(cluster.num_machines)
            total += weight
            credit = self._wrr_credit[cluster.name] + weight
            self._wrr_credit[cluster.name] = credit
            if best is None or credit > self._wrr_credit[best.name] or (
                credit == self._wrr_credit[best.name] and cluster.name < best.name
            ):
                best = cluster
        self._wrr_credit[best.name] -= total
        return best

    @staticmethod
    def _probe_pending_tokens(cluster: "FleetCluster") -> float:
        """Queue-probe: total pending tokens across the cluster's machines."""
        return float(sum(total_queue_load(m) for m in cluster.scheduler.machines))

    def _outstanding_score(self, cluster: "FleetCluster") -> float:
        """In-flight requests (least-outstanding key)."""
        return float(self.traffic[cluster.name].outstanding)

    def _slo_feedback_score(self, cluster: "FleetCluster") -> float:
        """Outstanding load scaled by rolling tail-latency degradation.

        The degradation factor compares the cluster's rolling P99 TTFT/TBT
        against the healthiest routable cluster (``self._fleet_best``,
        refreshed once per routing decision); a cluster 2x worse on its tail
        receives half the traffic share at equal queue depth.  Clusters with
        no samples yet are treated as healthy.
        """
        best_ttft, best_tbt = self._fleet_best
        ttft, tbt = self.traffic[cluster.name].rolling_p99()
        degradation = 1.0
        if best_ttft > 0 and ttft > 0:
            degradation = max(degradation, ttft / best_ttft)
        if best_tbt > 0 and tbt > 0:
            degradation = max(degradation, tbt / best_tbt)
        return (self.traffic[cluster.name].outstanding + 1.0) * degradation

    def _fleet_best_p99(self) -> tuple[float, float]:
        """Smallest non-zero rolling P99 TTFT/TBT across routable clusters."""
        best_ttft = 0.0
        best_tbt = 0.0
        for cluster in self._clusters:
            if not cluster.routable:
                continue
            ttft, tbt = self.traffic[cluster.name].rolling_p99()
            if ttft > 0 and (best_ttft == 0 or ttft < best_ttft):
                best_ttft = ttft
            if tbt > 0 and (best_tbt == 0 or tbt < best_tbt):
                best_tbt = tbt
        return best_ttft, best_tbt

    # -- reporting ---------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly routing statistics (per cluster and per tenant)."""
        snapshot = {
            "policy": self.policy,
            "clusters": {
                name: {
                    "submitted": traffic.submitted,
                    "completed": traffic.completed,
                    "outstanding": traffic.outstanding,
                    "by_tenant": dict(sorted(traffic.by_tenant.items())),
                }
                for name, traffic in sorted(self.traffic.items())
            },
        }
        if self._health:
            snapshot["reliability"] = {
                name: {"state": health.state, "bans": health.bans}
                for name, health in sorted(self._health.items())
            }
            snapshot["bans_issued"] = self.bans_issued
        return snapshot
