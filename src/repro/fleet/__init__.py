"""The fleet layer: multi-cluster routing, per-tenant SLOs, cloud bursting.

One layer above :mod:`repro.core`: several complete
:class:`~repro.core.cluster.ClusterSimulation`\\ s advance on a single shared
discrete-event engine behind a global, tenant-aware
:class:`~repro.fleet.router.FleetRouter`, while an optional
:class:`~repro.fleet.provisioner.FleetProvisioner` rents and retires whole
clusters elastically (warm pools, cold starts, drain-then-retire) with
machine-hour/cost accounting against static provisioning.  The
request-lifecycle reliability layer (:mod:`repro.fleet.reliability`) adds
per-tenant deadlines, budgeted retries, hedged requests, and degraded
service under overload on top of the router.
"""

from repro.fleet.fleet import FleetCluster, FleetResult, FleetSimulation
from repro.fleet.provisioner import (
    ClusterState,
    FleetProvisionEvent,
    FleetProvisioner,
    FleetProvisionerConfig,
)
from repro.fleet.reliability import (
    DeadlineConfig,
    DegradedConfig,
    HedgeConfig,
    ReliabilityCoordinator,
    RetryPolicy,
)
from repro.fleet.router import (
    DEFAULT_SLO_WINDOW,
    ROUTER_POLICIES,
    AdmissionConfig,
    ClusterHealth,
    ClusterTraffic,
    FleetRouter,
    ReliabilityConfig,
)

__all__ = [
    "FleetSimulation",
    "FleetResult",
    "FleetCluster",
    "FleetRouter",
    "ClusterTraffic",
    "ClusterHealth",
    "ReliabilityConfig",
    "AdmissionConfig",
    "RetryPolicy",
    "HedgeConfig",
    "DeadlineConfig",
    "DegradedConfig",
    "ReliabilityCoordinator",
    "ROUTER_POLICIES",
    "DEFAULT_SLO_WINDOW",
    "FleetProvisioner",
    "FleetProvisionerConfig",
    "FleetProvisionEvent",
    "ClusterState",
]
