"""Fleet simulation: several phase-split clusters behind one global router.

The paper sizes and operates a *single* Splitwise cluster.  A production
service runs fleets of such clusters: a global front-end routes each request
to one cluster, tenants carry distinct SLOs, and capacity is rented
elastically.  :class:`FleetSimulation` models exactly that, inside a single
deterministic :class:`~repro.simulation.engine.SimulationEngine`:

* every member cluster is a full :class:`~repro.core.cluster.ClusterSimulation`
  (machines, cluster scheduler, KV transfers, optional pool autoscaler),
  advancing on the shared engine's timeline;
* a :class:`~repro.fleet.router.FleetRouter` assigns each arriving request
  to a cluster under a pluggable, tenant-aware policy;
* an optional :class:`~repro.fleet.provisioner.FleetProvisioner` cloud-bursts
  standby clusters under pressure and drains-then-retires them when idle,
  with machine-hour/cost accounting against static provisioning;
* the result rolls SLO attainment up **per tenant**
  (:func:`~repro.metrics.slo.evaluate_slo_by_tenant`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.autoscaler import AutoscalerConfig
from repro.core.cluster import ClusterSimulation, SimulationResult
from repro.core.designs import ClusterDesign
from repro.fleet.provisioner import ClusterState, FleetProvisioner, FleetProvisionerConfig
from repro.fleet.reliability import (
    DeadlineConfig,
    DegradedConfig,
    HedgeConfig,
    ReliabilityCoordinator,
    RetryPolicy,
)
from repro.fleet.router import AdmissionConfig, FleetRouter, ReliabilityConfig

if TYPE_CHECKING:  # pragma: no cover - the fault plane layers above the fleet
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlanConfig
    from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
    from repro.simulation.sharding import ShardPlan
from repro.hardware.machine import DGX_A100
from repro.metrics.slo import DEFAULT_SLO, SloPolicy, TenantSloReport, evaluate_slo_by_tenant
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ARRIVAL_EVENT_PRIORITY
from repro.simulation.request import Request
from repro.workload.trace import Trace



def _overlap_seconds(start: float, end: float, windows: Sequence[tuple[float, float]]) -> float:
    """Seconds of ``[start, end)`` covered by the (disjoint) ``windows``."""
    return sum(
        max(0.0, min(end, w_end) - max(start, w_start)) for w_start, w_end in windows
    )


@dataclass
class FleetCluster:
    """One member cluster of a fleet.

    Attributes:
        name: Fleet-unique cluster name (prefixes its machine names).
        simulation: The full cluster simulation advancing on the shared
            engine.
        state: Provisioning lifecycle state (always ``ACTIVE`` without a
            provisioner).
        routable: Whether the router may send new requests here.  Owned by
            the provisioner lifecycle (or static construction).
        available: Whether the cluster is physically up.  Owned by the fault
            plane: a correlated outage clears it, the outage's end restores
            it.  Distinct from ``routable`` so an outage and recovery never
            fight the provisioner over the same bit.
        requests: Every request routed to this cluster, in routing order.
    """

    name: str
    simulation: ClusterSimulation
    state: ClusterState = ClusterState.ACTIVE
    routable: bool = True
    available: bool = True
    requests: list[Request] = field(default_factory=list, repr=False)

    @property
    def scheduler(self):
        """The cluster's cluster-level scheduler."""
        return self.simulation.scheduler

    @property
    def design(self) -> ClusterDesign:
        """The cluster's design."""
        return self.simulation.design

    @property
    def num_machines(self) -> int:
        """Machines in the cluster (router weight, billing unit)."""
        return self.simulation.design.num_machines


@dataclass
class FleetResult:
    """Everything a fleet simulation produced.

    Attributes:
        trace_name: Name of the input trace.
        requests: All submitted requests, in trace order.
        clusters: The member cluster handles (state as of the end of the run).
        cluster_results: Per-cluster :class:`SimulationResult`, keyed by
            cluster name (each holds only the requests routed there).
        duration_s: Simulated window.
        router: The fleet router (routing statistics per cluster/tenant).
        provisioner: The burst provisioner (``None`` for a static fleet).
        model: The LLM served (builds the default SLO reference).
        tenant_policies: Per-tenant SLO policies used by default in
            :meth:`tenant_slo_report`.
        shed_by_tenant: Requests rejected up front by admission control,
            grouped by tenant (empty without admission control).
        injector: The fault injector that drove the run (``None`` when no
            fault plan was armed); exposes seed and injection provenance.
        expired_by_tenant: Requests cancelled by the request-lifecycle layer
            (missed deadline or exhausted retry budget), grouped by tenant.
        lifecycle: The request-lifecycle coordinator (``None`` when no
            deadline/retry/hedge/degraded config was supplied); exposes
            retry/hedge counters and wasted-work accounting.
    """

    trace_name: str
    requests: list[Request]
    clusters: list[FleetCluster]
    cluster_results: dict[str, SimulationResult]
    duration_s: float
    router: FleetRouter = field(repr=False)
    provisioner: FleetProvisioner | None = field(default=None, repr=False)
    model: ModelSpec = field(default=LLAMA2_70B, repr=False)
    tenant_policies: Mapping[str, SloPolicy] | None = field(default=None, repr=False)
    shed_by_tenant: dict[str, int] = field(default_factory=dict)
    injector: "FaultInjector | None" = field(default=None, repr=False)
    expired_by_tenant: dict[str, int] = field(default_factory=dict)
    lifecycle: ReliabilityCoordinator | None = field(default=None, repr=False)

    @property
    def completed_requests(self) -> list[Request]:
        """Requests that generated all their output tokens."""
        return [r for r in self.requests if r.is_complete]

    @property
    def shed_requests(self) -> list[Request]:
        """Requests rejected up front by admission control (never routed)."""
        return [r for r in self.requests if r.shed]

    @property
    def requests_shed(self) -> int:
        """Count of admission-shed requests."""
        return sum(self.shed_by_tenant.values())

    @property
    def expired_requests(self) -> list[Request]:
        """Requests cancelled by the lifecycle layer (deadline / retry exhaustion)."""
        return [r for r in self.requests if r.expired]

    @property
    def requests_expired(self) -> int:
        """Count of lifecycle-expired requests."""
        return sum(self.expired_by_tenant.values())

    @property
    def degraded_requests(self) -> list[Request]:
        """Requests served to completion with a degraded (truncated) output budget."""
        return [r for r in self.requests if r.degraded and r.is_complete]

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests that completed.

        Shed and expired requests stay in the denominator: admission control
        and deadlines trade completion rate for the latency of the requests
        they do serve, and hiding the dropped traffic would make that trade
        look free.
        """
        return len(self.completed_requests) / len(self.requests) if self.requests else 0.0

    @property
    def total_machines(self) -> int:
        """Machines across every member cluster (active or standby)."""
        return sum(cluster.num_machines for cluster in self.clusters)

    def tenant_slo_report(
        self,
        reference_model: PerformanceModel | None = None,
        policies: Mapping[str, SloPolicy] | None = None,
        default_policy: SloPolicy = DEFAULT_SLO,
        tbt_mode: str = "per-token",
    ) -> TenantSloReport:
        """Per-tenant SLO verdicts plus the fleet-level roll-up."""
        if reference_model is None:
            reference_model = AnalyticalPerformanceModel(self.model, DGX_A100)
        return evaluate_slo_by_tenant(
            self.requests,
            reference_model,
            policies if policies is not None else self.tenant_policies,
            default_policy,
            tbt_mode=tbt_mode,
        )

    def machine_hours(self) -> float:
        """Machine-hours the fleet actually consumed over the window.

        With a burst provisioner, standby/retired intervals are billed at
        their state fraction; any per-cluster pool autoscaler's park
        intervals are subtracted on top, intersected per machine with the
        cluster's fully billed (serving) windows — a machine parked while
        its cluster was an unbilled standby was never billed in the first
        place, and that "saving" must not discount the fleet twice.  A
        static fleet pays for every cluster the whole window (minus
        per-cluster parking).
        """
        if self.provisioner is not None:
            hours = self.provisioner.billed_machine_hours()
            for name, result in self.cluster_results.items():
                if result.autoscaler is not None:
                    windows = self.provisioner.fully_billed_windows(name)
                    hours -= sum(
                        _overlap_seconds(start, end, windows)
                        for _machine, start, end in result.autoscaler.park_intervals()
                    ) / 3600.0
            return hours
        return sum(result.machine_hours() for result in self.cluster_results.values())

    def static_machine_hours(self) -> float:
        """Machine-hours of statically provisioning every cluster all window."""
        return self.total_machines * self.duration_s / 3600.0

    def machine_hours_saved(self) -> float:
        """Machine-hours released versus static whole-fleet provisioning."""
        return self.static_machine_hours() - self.machine_hours()

    @staticmethod
    def _machine_rates(result: SimulationResult) -> dict[str, float]:
        """Per-machine $/hour by machine name (prompt and token rates differ)."""
        machines = list(result.scheduler.machines) + list(result.scheduler.failed_machines)
        return {machine.name: machine.spec.cost_per_hour for machine in machines}

    def cost(self) -> float:
        """Dollar cost of the consumed machine-hours.

        Parked machines are credited at *their own* hourly rate (a parked
        H100 prompt machine is worth more than a parked A100 token machine),
        and — like :meth:`machine_hours` — only for park time that fell
        inside the cluster's fully billed windows.
        """
        if self.provisioner is not None:
            total = self.provisioner.billed_cost()
            for name, result in self.cluster_results.items():
                if result.autoscaler is None:
                    continue
                rates = self._machine_rates(result)
                windows = self.provisioner.fully_billed_windows(name)
                for machine, start, end in result.autoscaler.park_intervals():
                    total -= rates[machine] * _overlap_seconds(start, end, windows) / 3600.0
            return total
        total = 0.0
        for result in self.cluster_results.values():
            total += result.design.cost_per_hour * self.duration_s / 3600.0
            if result.autoscaler is not None:
                rates = self._machine_rates(result)
                for machine, seconds in result.autoscaler.parked_seconds_by_machine().items():
                    total -= rates[machine] * seconds / 3600.0
        return total

    def static_cost(self) -> float:
        """Dollar cost of statically provisioning every cluster all window."""
        return sum(
            cluster.design.cost_per_hour * self.duration_s / 3600.0 for cluster in self.clusters
        )

    def requests_by_cluster(self) -> dict[str, int]:
        """Requests routed to each cluster."""
        return {cluster.name: len(cluster.requests) for cluster in self.clusters}


class FleetSimulation:
    """Builds and runs a multi-cluster fleet on one shared engine.

    Args:
        design: Design of every member cluster (homogeneous fleets; build
            the cluster list yourself for heterogeneous ones).
        num_clusters: Clusters that start active.
        burst_clusters: Additional standby clusters the provisioner may
            burst into (requires ``provisioner``); the first
            ``warm_pool_target`` start warm, the rest cold.
        model: The LLM served by every cluster.
        router: Router policy name or a pre-built :class:`FleetRouter`.
        provisioner: Burst provisioner — a :class:`FleetProvisioner`, a
            :class:`FleetProvisionerConfig`, or ``True`` for defaults.
        autoscaler: Per-cluster pool autoscaler config (each cluster gets
            its own instance; ``True`` for defaults).
        tenant_policies: Per-tenant SLO policies threaded into the result.
        faults: Optional :class:`~repro.faults.plan.FaultPlanConfig`; when
            its processes are enabled, a :class:`FaultInjector` compiles and
            arms a seeded fault plan at the start of :meth:`run`.
        reliability: Optional :class:`~repro.fleet.router.ReliabilityConfig`
            enabling per-cluster error tracking with auto-ban, cool-down,
            and probationary re-admission on the router.
        admission: Optional :class:`~repro.fleet.router.AdmissionConfig`
            enabling per-tenant admission control: under fleet overload the
            lowest-priority tenants' arrivals are shed first.
        retry: Optional :class:`~repro.fleet.reliability.RetryPolicy`
            re-submitting failed attempts through the router (failing
            cluster excluded) under a per-tenant budget with seeded backoff.
        hedge: Optional :class:`~repro.fleet.reliability.HedgeConfig`
            duplicating slow-starting requests onto a second cluster after
            a rolling-P99-derived delay (first attempt wins).
        deadlines: Optional :class:`~repro.fleet.reliability.DeadlineConfig`
            with per-tenant TTFT / end-to-end deadlines enforced by engine
            timers that cancel-and-account expired work.
        degraded: Optional :class:`~repro.fleet.reliability.DegradedConfig`
            serving would-be-shed (and optionally deadline-missing)
            requests with a truncated output budget instead of dropping
            them.  Any of these four being set creates the fleet's
            :class:`~repro.fleet.reliability.ReliabilityCoordinator`.
        parallel: Request sharded execution with this many workers (see
            :mod:`repro.simulation.sharding`).  ``1`` runs the shard
            barrier loop in-process (no worker processes); ``None`` (the
            default) keeps the plain serial engine.  Fleets whose
            configuration couples clusters mid-run (non-weighted-rr
            routing, provisioner, reliability/admission/lifecycle, armed
            faults, observability, autoscalers) fall back to the serial
            path automatically, recording the reasons in
            :attr:`parallel_info`.
        epoch_s: Barrier spacing for sharded execution; ``None`` derives a
            default from the trace window.  Any positive value is
            parity-correct — this only bounds shard lag.
        **cluster_kwargs: Forwarded to every member
            :class:`ClusterSimulation` (batching, routing, thresholds,
            ``fast_forward``, ...).
    """

    def __init__(
        self,
        design: ClusterDesign,
        num_clusters: int,
        burst_clusters: int = 0,
        model: ModelSpec = LLAMA2_70B,
        router: FleetRouter | str = "least-outstanding",
        provisioner: FleetProvisioner | FleetProvisionerConfig | bool | None = None,
        autoscaler: AutoscalerConfig | bool | None = None,
        tenant_policies: Mapping[str, SloPolicy] | None = None,
        faults: "FaultPlanConfig | None" = None,
        reliability: ReliabilityConfig | None = None,
        admission: AdmissionConfig | None = None,
        retry: RetryPolicy | None = None,
        hedge: HedgeConfig | None = None,
        deadlines: DeadlineConfig | None = None,
        degraded: DegradedConfig | None = None,
        parallel: int | None = None,
        epoch_s: float | None = None,
        **cluster_kwargs,
    ) -> None:
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if burst_clusters < 0:
            raise ValueError(f"burst_clusters must be >= 0, got {burst_clusters}")
        if provisioner is True:
            provisioner = FleetProvisioner()
        elif isinstance(provisioner, FleetProvisionerConfig):
            provisioner = FleetProvisioner(provisioner)
        elif provisioner is False:
            provisioner = None
        if burst_clusters and provisioner is None:
            raise ValueError("burst_clusters require a provisioner to activate them")
        if parallel is not None and parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        if epoch_s is not None and epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {epoch_s}")
        self.model = model
        self.parallel = parallel
        self.epoch_s = epoch_s
        #: Provenance of the last run's execution mode: ``None`` until a
        #: run with ``parallel`` set completes (or falls back), then a dict
        #: with requested/effective worker and shard counts, the mode, and
        #: (on fallback) the blocking reasons.  Deterministic content only —
        #: no wall-clock times — so it is safe in byte-compared artifacts.
        self.parallel_info: dict | None = None
        self._design = design
        self._cluster_kwargs = dict(cluster_kwargs)
        self.provisioner: FleetProvisioner | None = provisioner
        self.router = FleetRouter(router) if isinstance(router, str) else router
        if reliability is not None:
            self.router.reliability = reliability
        if self.router.reliability is not None and self.router.reference_model is None:
            # Error classification compares completions against an
            # uncontended run of the served model (the paper's SLO
            # reference hardware).
            self.router.reference_model = AnalyticalPerformanceModel(model, DGX_A100)
        self.admission = admission
        self.faults = faults
        self.injector: "FaultInjector | None" = None
        self.tenant_policies = tenant_policies
        self.engine = SimulationEngine()
        self.clusters: list[FleetCluster] = []
        warm_target = provisioner.config.warm_pool_target if provisioner is not None else 0
        for index in range(num_clusters + burst_clusters):
            name = f"cluster-{index}"
            simulation = ClusterSimulation(
                design,
                model=model,
                engine=self.engine,
                name=name,
                autoscaler=autoscaler,
                **cluster_kwargs,
            )
            if index < num_clusters:
                state = ClusterState.ACTIVE
            elif index < num_clusters + warm_target:
                state = ClusterState.WARM
            else:
                state = ClusterState.COLD
            self.clusters.append(
                FleetCluster(
                    name=name,
                    simulation=simulation,
                    state=state,
                    routable=state is ClusterState.ACTIVE,
                )
            )
        self.router.attach(self.clusters, engine=self.engine)
        if any(cfg is not None for cfg in (retry, hedge, deadlines, degraded)):
            self.lifecycle: ReliabilityCoordinator | None = ReliabilityCoordinator(
                self, retry=retry, hedge=hedge, deadlines=deadlines, degraded=degraded
            )
        else:
            self.lifecycle = None
        self._expected = 0
        self._completed = 0
        self._shed = 0
        self._expired = 0
        self.shed_by_tenant: dict[str, int] = {}
        self.expired_by_tenant: dict[str, int] = {}
        #: Opt-in observability plane (``None`` = record nothing, pay
        #: nothing beyond these guard checks on cold paths).
        self.obs: "ObservabilityPlane | None" = None

    def observe(self, config: "ObservabilityConfig") -> "ObservabilityPlane":
        """Opt this fleet into span/metrics recording for its next run.

        The ``repro.obs`` package is imported here, lazily — an unobserved
        fleet never pays for (or depends on) the observability plane.
        """
        from repro.obs.plane import ObservabilityPlane

        self.obs = ObservabilityPlane(config)
        return self.obs

    @property
    def machines(self):
        """Every machine across every member cluster."""
        return [machine for cluster in self.clusters for machine in cluster.simulation.machines]

    # -- internal wiring ---------------------------------------------------------------

    def _wire_completion_hooks(self) -> None:
        for cluster in self.clusters:
            cluster.scheduler.on_request_complete = (
                lambda request, name=cluster.name: self._on_complete(name, request)
            )

    def _wire_failure_hooks(self) -> None:
        """Chain machine-failure hooks into the router's reliability tracking.

        Must run *after* every cluster's ``prepare()``: the per-cluster pool
        autoscaler claims ``on_machine_failed`` when it attaches, and both
        observers need to see the event.
        """
        for cluster in self.clusters:
            scheduler = cluster.scheduler
            inner = scheduler.on_machine_failed

            def chained(machine, name=cluster.name, inner=inner):
                if inner is not None:
                    inner(machine)
                self.router.note_failure(name)

            scheduler.on_machine_failed = chained

    def _on_complete(self, cluster_name: str, request: Request) -> None:
        if self.lifecycle is not None:
            # First-wins settlement: the coordinator maps hedge clones back
            # to their logical request and suppresses duplicate counts.
            settled = self.lifecycle.on_attempt_complete(cluster_name, request)
            if settled is None:
                return
            request = settled
        self.router.note_completed(cluster_name, request)
        self._completed += 1
        if self._completed + self._shed + self._expired >= self._expected:
            # Every request is accounted for (completed, shed up front, or
            # expired by the lifecycle layer): stop all recurring
            # controllers.  Two or more of them (per-cluster autoscalers,
            # the fleet provisioner) would otherwise keep each other's
            # "queue non-empty" checks true forever.  Controller ticks never
            # act after the last completion, so stopping here is
            # behavior-neutral.
            self._stop_controllers()

    def _stop_controllers(self) -> None:
        if self.provisioner is not None:
            # A draining cluster whose final request is the fleet's last
            # completion must stop billing now, not at a tick that will
            # never fire.
            self.provisioner.retire_drained()
            self.provisioner.stop()
        for cluster in self.clusters:
            if cluster.simulation.autoscaler is not None:
                cluster.simulation.autoscaler.stop()
        if self.obs is not None:
            # The metrics ticker is a recurring engine event too: left
            # running it would advance the clock past the last completion.
            self.obs.stop_ticker()

    def _submit(self, request: Request, readmit: bool = False) -> None:
        if not readmit and self.admission is not None:
            if self.router.total_outstanding() >= self.admission.shed_threshold(request.tenant):
                if self.lifecycle is not None and self.lifecycle.wants_shed_degrade(request):
                    # Degraded service: admit with a truncated output budget
                    # instead of dropping.  Only requests whose budget
                    # actually shrinks take this path — degrading an
                    # already-short request would defeat admission control
                    # without offloading anything.
                    self.lifecycle.degrade_admission(request)
                    if self.obs is not None:
                        self.obs.note_degraded_admission(request, self.engine.now)
                else:
                    # Over this tenant's headroom: reject up front instead
                    # of queueing.  Evacuated requests being re-routed
                    # (readmit) are exempt — admission gates *new* work, and
                    # dropping already-admitted work on re-route would lose
                    # requests.
                    request.shed = True
                    self._shed += 1
                    self.shed_by_tenant[request.tenant] = (
                        self.shed_by_tenant.get(request.tenant, 0) + 1
                    )
                    if self.obs is not None:
                        self.obs.note_shed(request, self.engine.now)
                    if self._completed + self._shed + self._expired >= self._expected:
                        self._stop_controllers()
                    return
        if self.lifecycle is not None and not readmit:
            self.lifecycle.register(request)
        self._submit_attempt(request)

    def _submit_attempt(self, request: Request, exclude: str | None = None) -> None:
        """Route one attempt (original, retry, or hedge clone) to a cluster."""
        cluster = self.router.route(request, exclude=exclude)
        cluster.requests.append(request)
        if self.obs is not None:
            self.obs.note_route(request, cluster.name, self.engine.now, "route")
        cluster.scheduler.submit(request)
        if self.lifecycle is not None:
            self.lifecycle.on_routed(request, cluster.name)

    def _note_expired(self, request: Request) -> None:
        """Account a lifecycle-expired request toward the run's census."""
        if self.obs is not None:
            # ``Request.expire`` stores no timestamp, so the expiry instant
            # must be captured here, while the engine clock still holds it.
            self.obs.note_expired(request, self.engine.now)
        self._expired += 1
        self.expired_by_tenant[request.tenant] = (
            self.expired_by_tenant.get(request.tenant, 0) + 1
        )
        if self._completed + self._shed + self._expired >= self._expected:
            self._stop_controllers()

    # -- fault-plane actions -----------------------------------------------------------

    def begin_outage(self, cluster: FleetCluster) -> None:
        """Take a whole cluster down (correlated failure domain).

        Every machine fails at once; displaced requests are withdrawn from
        the router's books and re-routed across the surviving clusters.
        The cluster stays ``available = False`` until :meth:`end_outage`.
        """
        cluster.available = False
        if self.obs is not None:
            self.obs.note_outage(cluster.name, True, self.engine.now)
        evacuated = cluster.scheduler.evacuate()
        self.router.note_evacuated(cluster.name, evacuated)
        if evacuated:
            evacuated_ids = {id(request) for request in evacuated}
            cluster.requests = [
                request for request in cluster.requests if id(request) not in evacuated_ids
            ]
            for request in evacuated:
                if self.lifecycle is not None:
                    # Already withdrawn from the router's books and the
                    # roster above; the coordinator decides retry vs expire.
                    self.lifecycle.on_attempt_failed(cluster.name, request, accounted=True)
                else:
                    self._submit(request, readmit=True)

    def end_outage(self, cluster: FleetCluster) -> None:
        """Bring an outaged cluster back: repair done, machines rejoin empty."""
        cluster.available = True
        if self.obs is not None:
            self.obs.note_outage(cluster.name, False, self.engine.now)
        cluster.scheduler.recover_all()

    def revoke_cluster(self, cluster: FleetCluster) -> None:
        """Spot revocation: the rented capacity is reclaimed mid-run.

        Unlike an outage the hardware is healthy — the capacity is simply
        taken away for good.  In-flight requests evacuate to the rest of
        the fleet, the machines are restored to a clean state (someone else
        will rent them), and the cluster returns to the cold pool, where
        the provisioner may re-rent it at full cold-start price.
        """
        evacuated = cluster.scheduler.evacuate()
        self.router.note_evacuated(cluster.name, evacuated)
        cluster.scheduler.recover_all()
        if self.provisioner is not None:
            self.provisioner.revoke(cluster, "spot revocation")
        else:
            cluster.state = ClusterState.COLD
            cluster.routable = False
        if evacuated:
            evacuated_ids = {id(request) for request in evacuated}
            cluster.requests = [
                request for request in cluster.requests if id(request) not in evacuated_ids
            ]
            for request in evacuated:
                if self.lifecycle is not None:
                    self.lifecycle.on_attempt_failed(cluster.name, request, accounted=True)
                else:
                    self._submit(request, readmit=True)

    # -- running -----------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        drain: bool = True,
        horizon_s: float | None = None,
        failures: Sequence[tuple[float, str]] = (),
    ) -> FleetResult:
        """Replay ``trace`` through the fleet.

        Args:
            trace: The request trace (tenant tags drive per-tenant SLOs and
                tenant-aware routing).
            drain: Keep simulating until every request completes.
            horizon_s: Optional hard simulated-time limit.
            failures: ``(time_s, machine_name)`` failure injections; machine
                names carry their cluster prefix (``"cluster-0/prompt-1"``).

        Returns:
            The populated :class:`FleetResult`.

        Raises:
            ValueError: if a failure names a machine in no member cluster.
        """
        requests = [Request(descriptor=descriptor) for descriptor in trace]
        # Validate inputs before arming anything: a bad failure name must not
        # leave the shared engine holding scheduled events and attached
        # control loops that cannot be re-attached.
        known_prefixes = tuple(f"{c.name}/" for c in self.clusters)
        for _, name in failures:
            if not name.startswith(known_prefixes):
                raise ValueError(
                    f"failure names machine {name!r} outside every cluster "
                    f"(expected a '<cluster>/' prefix)"
                )
        if self.parallel is not None:
            from repro.simulation.sharding import plan_shards

            plan = plan_shards(self, self.parallel, drain=drain, horizon_s=horizon_s)
            if plan.mode == "parallel":
                return self._run_sharded(trace, requests, failures, plan)
            # Coupled configuration: fall through to the exact serial path
            # below (results are trivially byte-identical to an unparallel
            # run), keeping the blocking reasons as provenance.
            self.parallel_info = {
                "requested": plan.requested,
                "mode": "serial",
                "workers": 0,
                "shards": 1,
                "reasons": list(plan.reasons),
            }
        sanitizer = self.engine.sanitizer
        if sanitizer is not None:
            # The trace and fault seams spend all their randomness before the
            # event loop runs; a mid-run draw from either would make draw
            # order depend on event interleaving and is flagged at the site.
            sanitizer.register_stream("trace", run_phase=False)
            sanitizer.register_stream("fault", run_phase=False)
        self._expected = len(requests)
        self._completed = 0
        self._shed = 0
        self._expired = 0
        self.shed_by_tenant = {}
        self.expired_by_tenant = {}
        if self.lifecycle is not None:
            self.lifecycle.reset()
        self._wire_completion_hooks()
        if self.lifecycle is not None and self.lifecycle.retry is not None:
            # With a retry policy, failed attempts leave their cluster and
            # re-enter through the router (failing cluster excluded, budget
            # charged).  Without one, schedulers keep the pre-lifecycle
            # behavior: restart locally on the surviving machines.
            for cluster in self.clusters:
                cluster.scheduler.restart_handler = (
                    lambda request, name=cluster.name: self.lifecycle.on_attempt_failed(
                        name, request
                    )
                )
        for cluster in self.clusters:
            prefix = f"{cluster.name}/"
            cluster.simulation.prepare(
                [(t, name) for t, name in failures if name.startswith(prefix)]
            )
        if self.router.reliability is not None:
            # After prepare(): the autoscalers have claimed the
            # machine-failure hooks by now, so chaining sees them.
            self._wire_failure_hooks()
        if self.provisioner is not None:
            self.provisioner.attach(self)
        if self.faults is not None and self.faults.enabled:
            # Imported lazily: the fault plane layers above the fleet, and a
            # fleet without faults must not pay for (or depend on) it.
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(self, self.faults)
            self.injector.arm(trace.duration_s)
        if self.obs is not None:
            # Before the empty-trace check: the plane's metrics ticker is a
            # recurring controller and must be stopped with the others.
            self.obs.begin(self)
        if not requests:
            # Nothing will ever complete, so the completion-driven controller
            # stop below can never fire; with two or more recurring
            # controllers the run would otherwise never drain.
            self._stop_controllers()
        for request in requests:
            self.engine.schedule_at(
                request.arrival_time,
                lambda req=request: self._submit(req),
                priority=ARRIVAL_EVENT_PRIORITY,
                tag=f"fleet-arrival:{request.request_id}",
            )
        until = horizon_s if horizon_s is not None else (None if drain else trace.duration_s)
        self.engine.run(until=until)

        duration = max(self.engine.now, trace.duration_s)
        has_controllers = self.provisioner is not None or any(
            c.simulation.autoscaler is not None for c in self.clusters
        )
        if has_controllers and until is None:
            # Exclude the controller-only tail (same reasoning as the
            # cluster layer): the window ends at the last real work, keeping
            # machine-hour comparisons against static fleets honest.
            last_work = max(
                (r.completion_time for r in requests if r.completion_time is not None),
                default=0.0,
            )
            last_failure = max((time_s for time_s, _ in failures), default=0.0)
            last_provision = (
                max((e.time_s for e in self.provisioner.timeline), default=0.0)
                if self.provisioner is not None
                else 0.0
            )
            duration = max(trace.duration_s, last_work, last_failure, last_provision)

        cluster_results = {
            cluster.name: cluster.simulation.finish(cluster.requests, trace.name, duration)
            for cluster in self.clusters
        }
        if self.provisioner is not None:
            self.provisioner.finalize(duration)
        result = FleetResult(
            trace_name=trace.name,
            requests=requests,
            clusters=self.clusters,
            cluster_results=cluster_results,
            duration_s=duration,
            router=self.router,
            provisioner=self.provisioner,
            model=self.model,
            tenant_policies=self.tenant_policies,
            shed_by_tenant=dict(self.shed_by_tenant),
            injector=self.injector,
            expired_by_tenant=dict(self.expired_by_tenant),
            lifecycle=self.lifecycle,
        )
        if self.obs is not None:
            self.obs.finalize(result)
        return result

    def _run_sharded(
        self,
        trace: Trace,
        requests: list[Request],
        failures: Sequence[tuple[float, str]],
        plan: "ShardPlan",
    ) -> FleetResult:
        """Run a decomposable fleet as per-cluster-group engine shards.

        The coordinator routes every arrival up front — serial fleets
        execute arrivals in ``(arrival_time, trace_index)`` heap order, and
        weighted-rr routing depends only on that order, so pre-routing
        through the same router instance reproduces the serial assignment
        exactly.  Shards then simulate their cluster groups between
        bounded-lag barriers (:func:`repro.simulation.sharding.execute_shards`)
        and the results merge positionally by trace index and machine name.
        """
        from repro.simulation import sharding

        self._expected = len(requests)
        self._completed = 0
        self._shed = 0
        self._expired = 0
        self.shed_by_tenant = {}
        self.expired_by_tenant = {}
        shard_of: dict[str, int] = {}
        for shard_index, names in enumerate(plan.assignments):
            for name in names:
                shard_of[name] = shard_index
        order = sorted(range(len(requests)), key=lambda i: (requests[i].arrival_time, i))
        arrivals: list[list[tuple[float, sharding.ArrivalMessage]]] = [
            [] for _ in plan.assignments
        ]
        for index in order:
            request = requests[index]
            cluster = self.router.route(request)
            cluster.requests.append(request)
            arrivals[shard_of[cluster.name]].append(
                (request.arrival_time, (index, request.descriptor, cluster.name))
            )
        epoch_s = (
            self.epoch_s
            if self.epoch_s is not None
            else sharding.default_epoch_s(trace.duration_s)
        )
        cluster_kwargs = tuple(sorted(self._cluster_kwargs.items()))
        specs = [
            sharding.ShardSpec(
                shard_id=shard_index,
                cluster_names=names,
                design=self._design,
                model=self.model,
                cluster_kwargs=cluster_kwargs,
                failures=tuple(failures),
                sanitize=self.engine.sanitize,
            )
            for shard_index, names in enumerate(plan.assignments)
        ]
        results, epochs, last_event_time = sharding.execute_shards(
            specs, arrivals, epoch_s, use_processes=plan.workers > 0
        )
        by_name = {cluster.name: cluster for cluster in self.clusters}
        for shard_result in results:
            for row in shard_result.request_rows:
                sharding.apply_request_row(requests[row[0]], row)
            for cluster_name, exported in shard_result.machine_stats.items():
                by_name[cluster_name].simulation.metrics.absorb_machine_stats(exported)
        for cluster in self.clusters:
            # Completion counts replicate the serial router's bookkeeping;
            # the rolling latency windows are deliberately left empty — no
            # decomposable configuration consumes them, and they are not
            # part of any serialized result surface.
            completed = sum(1 for request in cluster.requests if request.is_complete)
            self.router.traffic[cluster.name].completed = completed
            self._completed += completed
        duration = max(last_event_time, trace.duration_s)
        cluster_results = {
            cluster.name: cluster.simulation.finish(cluster.requests, trace.name, duration)
            for cluster in self.clusters
        }
        self.parallel_info = {
            "requested": plan.requested,
            "mode": "parallel",
            "workers": plan.workers,
            "shards": plan.shard_count,
            "epoch_s": epoch_s,
            "epochs": epochs,
            "events_processed": sum(r.events_processed for r in results),
            "events_cancelled": sum(r.events_cancelled for r in results),
            "events_coalesced": sum(r.events_coalesced for r in results),
            "heap_compactions": sum(r.heap_compactions for r in results),
        }
        return FleetResult(
            trace_name=trace.name,
            requests=requests,
            clusters=self.clusters,
            cluster_results=cluster_results,
            duration_s=duration,
            router=self.router,
            provisioner=None,
            model=self.model,
            tenant_policies=self.tenant_policies,
            shed_by_tenant={},
            injector=None,
            expired_by_tenant={},
            lifecycle=None,
        )
