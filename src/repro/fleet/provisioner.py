"""Cloud-burst provisioning: renting and retiring whole clusters elastically.

Where PR 3's :class:`~repro.core.autoscaler.PoolAutoscaler` re-purposes
*machines within* a cluster, the :class:`FleetProvisioner` scales the fleet
itself — the pattern the cloud-scheduler family of systems applies to VM
fleets, lifted to whole phase-split clusters:

* **Burst.**  Under sustained pressure (hysteresis over outstanding requests
  per active cluster) the provisioner activates a standby cluster.  A *warm*
  standby joins the router after a short ready delay; a *cold* one pays the
  full cold-start (image pull, model load, NCCL ring formation) before it
  can take traffic.
* **Warm pools.**  A configurable number of standbys are kept warm — billed
  at a fraction of an active cluster — and optionally replenished from cold
  standbys whenever a warm cluster is promoted.
* **Drain-then-retire.**  Scale-down never kills in-flight work: a draining
  cluster leaves the router immediately, keeps serving its outstanding
  requests, and is only retired (billing stops) once fully drained.  If
  pressure returns while it is still draining, re-activating it is the
  cheapest capacity and is preferred over bursting a standby.

Every action lands in a timeline, and per-cluster state intervals feed the
fleet's machine-hour/cost accounting, so an elastic fleet is directly
comparable against statically provisioning every cluster for the whole
window.  Decisions read only deterministic counters, keeping fleet runs
bit-reproducible and fast-forward-parity safe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.simulation.engine import RecurringTask
from repro.simulation.events import PROVISIONER_TICK_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports provisioner)
    from repro.fleet.fleet import FleetCluster, FleetSimulation


class ClusterState(enum.Enum):
    """Lifecycle of a fleet cluster, as billed by the provisioner."""

    ACTIVE = "active"  #: serving traffic, fully billed
    WARM = "warm"  #: standby, billed at the warm fraction
    COLD = "cold"  #: off, unbilled
    STARTING = "starting"  #: booting toward active, fully billed
    DRAINING = "draining"  #: finishing in-flight work, fully billed
    RETIRED = "retired"  #: drained and released, unbilled


#: Billing rate per state, as a fraction of a fully active cluster.  WARM is
#: absent on purpose: its fraction is a config knob
#: (:attr:`FleetProvisionerConfig.warm_billing_fraction`), resolved by
#: :meth:`FleetProvisioner._billing_fraction`.
_BILLING_FRACTION = {
    ClusterState.ACTIVE: 1.0,
    ClusterState.STARTING: 1.0,
    ClusterState.DRAINING: 1.0,
    ClusterState.COLD: 0.0,
    ClusterState.RETIRED: 0.0,
}


@dataclass(frozen=True)
class FleetProvisionerConfig:
    """Tuning knobs for cloud-burst provisioning.

    Attributes:
        interval_s: Simulated seconds between control ticks.
        high_outstanding_per_cluster: Mean outstanding requests per active
            cluster above which the fleet is considered pressured.
        low_outstanding_per_cluster: Mean outstanding requests per active
            cluster below which the fleet is considered idle.
        hysteresis_ticks: Consecutive pressured (or idle) ticks required
            before acting — the anti-thrashing guard.
        cooldown_s: Minimum simulated time between two provisioning actions.
        min_active_clusters: Clusters the provisioner must keep routable.
        warm_start_s: Delay before a warm standby starts taking traffic.
        cold_start_s: Delay before a cold standby starts taking traffic
            (image pull + model load + interconnect bring-up).
        warm_pool_target: Standbys to keep warm; promoted warm clusters are
            replenished from cold standbys when any remain.
        warm_billing_fraction: Fraction of an active cluster's machine-hours
            billed for a warm standby.
    """

    interval_s: float = 5.0
    high_outstanding_per_cluster: float = 24.0
    low_outstanding_per_cluster: float = 4.0
    hysteresis_ticks: int = 2
    cooldown_s: float = 15.0
    min_active_clusters: int = 1
    warm_start_s: float = 4.0
    cold_start_s: float = 45.0
    warm_pool_target: int = 1
    warm_billing_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.hysteresis_ticks < 1:
            raise ValueError(f"hysteresis_ticks must be >= 1, got {self.hysteresis_ticks}")
        if self.min_active_clusters < 1:
            raise ValueError(f"min_active_clusters must be >= 1, got {self.min_active_clusters}")
        if self.warm_start_s < 0 or self.cold_start_s < 0:
            raise ValueError("start delays must be non-negative")
        if not 0.0 <= self.warm_billing_fraction <= 1.0:
            raise ValueError(f"warm_billing_fraction must be in [0, 1], got {self.warm_billing_fraction}")
        if self.warm_pool_target < 0:
            raise ValueError(f"warm_pool_target must be >= 0, got {self.warm_pool_target}")


@dataclass(frozen=True)
class FleetProvisionEvent:
    """One provisioning action, recorded in the fleet timeline.

    Attributes:
        time_s: Simulated time of the action.
        cluster: Cluster acted on.
        action: ``"burst-warm"``, ``"burst-cold"``, ``"activate"``,
            ``"undrain"``, ``"drain"``, ``"retire"``, ``"revoke"``, or
            ``"warm"``.
        reason: Signal that triggered the action.
    """

    time_s: float
    cluster: str
    action: str
    reason: str


class FleetProvisioner:
    """Recurring control loop that bursts and retires whole clusters.

    Attach to a fleet with :meth:`attach` (done by
    :class:`~repro.fleet.fleet.FleetSimulation` when constructed with a
    ``provisioner=``).  After the run, :attr:`timeline` holds every action
    and :meth:`billed_machine_hours` prices the elastic fleet for comparison
    against static provisioning.
    """

    def __init__(self, config: FleetProvisionerConfig | None = None) -> None:
        self.config = config or FleetProvisionerConfig()
        self.timeline: list[FleetProvisionEvent] = []
        self.ticks = 0
        self._fleet: "FleetSimulation | None" = None
        self._task: RecurringTask | None = None
        self._high_streak = 0
        self._low_streak = 0
        self._last_action_time = float("-inf")
        #: cluster name -> currently open (state, since_s) billing interval.
        self._open_interval: dict[str, tuple[ClusterState, float]] = {}
        #: cluster name -> accumulated billed seconds per state.
        self._state_seconds: dict[str, dict[ClusterState, float]] = {}
        #: cluster name -> closed (state, start_s, end_s) intervals, for
        #: intersecting per-cluster autoscaler park windows with billed time.
        self._state_intervals: dict[str, list[tuple[ClusterState, float, float]]] = {}
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self, fleet: "FleetSimulation") -> None:
        """Start the control loop on the fleet's engine.

        Raises:
            RuntimeError: if already attached.
        """
        if self._task is not None:
            raise RuntimeError("provisioner is already attached to a fleet")
        self._fleet = fleet
        for cluster in fleet.clusters:
            self._open_interval[cluster.name] = (cluster.state, fleet.engine.now)
            self._state_seconds[cluster.name] = {}
            self._state_intervals[cluster.name] = []
        self._task = fleet.engine.schedule_recurring(
            self.config.interval_s, self._tick, priority=PROVISIONER_TICK_PRIORITY, tag="fleet-provisioner"
        )

    def stop(self) -> None:
        """Stop ticking (called by the fleet once every request completed)."""
        if self._task is not None:
            self._task.cancel()

    def finalize(self, end_time_s: float) -> None:
        """Close all open billing intervals at the end of the window."""
        self.stop()
        if self._finalized:
            return
        self._finalized = True
        for name, (state, since) in list(self._open_interval.items()):
            seconds = self._state_seconds[name]
            seconds[state] = seconds.get(state, 0.0) + max(0.0, end_time_s - since)
            if end_time_s > since:
                self._state_intervals[name].append((state, since, end_time_s))
            del self._open_interval[name]

    # -- accounting --------------------------------------------------------------------

    def _transition(self, cluster: "FleetCluster", new_state: ClusterState) -> None:
        """Move a cluster to ``new_state``, closing its open billing interval."""
        now = self._fleet.engine.now
        name = cluster.name
        state, since = self._open_interval[name]
        seconds = self._state_seconds[name]
        seconds[state] = seconds.get(state, 0.0) + (now - since)
        if now > since:
            self._state_intervals[name].append((state, since, now))
        self._open_interval[name] = (new_state, now)
        cluster.state = new_state
        cluster.routable = new_state is ClusterState.ACTIVE

    def _billing_fraction(self, state: ClusterState) -> float:
        """Billing rate for one state (WARM comes from the config knob)."""
        if state is ClusterState.WARM:
            return self.config.warm_billing_fraction
        return _BILLING_FRACTION[state]

    def billed_machine_hours(self) -> float:
        """Machine-hours billed across the fleet (state-weighted).

        Active/starting/draining time bills fully, warm standby at the
        configured fraction, cold/retired not at all.  Call :meth:`finalize`
        first (done by the fleet simulation).
        """
        total = 0.0
        for cluster in self._fleet.clusters:
            seconds = self._state_seconds.get(cluster.name, {})
            for state, elapsed in seconds.items():
                total += self._billing_fraction(state) * elapsed * cluster.num_machines / 3600.0
        return total

    def fully_billed_windows(self, cluster_name: str) -> list[tuple[float, float]]:
        """Closed ``(start_s, end_s)`` windows in which the cluster billed fully.

        Call :meth:`finalize` first.  The fleet intersects autoscaler park
        intervals with these windows so that machines parked while the
        cluster was an unbilled standby never discount the bill.
        """
        return [
            (start, end)
            for state, start, end in self._state_intervals.get(cluster_name, [])
            if self._billing_fraction(state) == 1.0
        ]

    def billed_cost(self) -> float:
        """Dollar cost of the billed intervals (cluster cost_per_hour-weighted)."""
        total = 0.0
        for cluster in self._fleet.clusters:
            seconds = self._state_seconds.get(cluster.name, {})
            for state, elapsed in seconds.items():
                total += self._billing_fraction(state) * elapsed * cluster.design.cost_per_hour / 3600.0
        return total

    def burst_count(self) -> int:
        """Number of standby activations (warm or cold) performed."""
        return sum(1 for event in self.timeline if event.action.startswith("burst"))

    def timeline_as_dicts(self) -> list[dict]:
        """JSON-friendly copy of the provisioning timeline."""
        return [
            {
                "time_s": round(event.time_s, 3),
                "cluster": event.cluster,
                "action": event.action,
                "reason": event.reason,
            }
            for event in self.timeline
        ]

    # -- control loop ------------------------------------------------------------------

    def _tick(self) -> None:
        fleet = self._fleet
        engine = fleet.engine
        self.ticks += 1
        if engine.pending_events == 0:
            # Fully drained fleet with no controllers left: stop keeping the
            # event queue alive.  (The fleet also stops the loop explicitly
            # once every request completes — see FleetSimulation._on_complete
            # — because two recurring controllers would otherwise keep each
            # other's queues non-empty forever.)
            self._task.cancel()
            return

        serving = [c for c in fleet.clusters if c.state in (ClusterState.ACTIVE, ClusterState.STARTING)]
        outstanding = sum(fleet.router.traffic[c.name].outstanding for c in fleet.clusters)
        load = outstanding / len(serving) if serving else float("inf")

        cfg = self.config
        self._high_streak = self._high_streak + 1 if load > cfg.high_outstanding_per_cluster else 0
        self._low_streak = self._low_streak + 1 if load < cfg.low_outstanding_per_cluster else 0

        # Retiring a drained cluster is bookkeeping, not a scaling decision:
        # it bypasses cooldown so billing stops the moment the drain ends.
        self.retire_drained()

        if engine.now - self._last_action_time < cfg.cooldown_s:
            return
        acted = False
        if self._high_streak >= cfg.hysteresis_ticks:
            acted = self._scale_up(reason=f"outstanding {load:.1f}/cluster")
        elif self._low_streak >= cfg.hysteresis_ticks:
            acted = self._scale_down(reason=f"outstanding {load:.1f}/cluster")
        if acted:
            self._last_action_time = engine.now
            self._high_streak = 0
            self._low_streak = 0

    def revoke(self, cluster: "FleetCluster", reason: str) -> None:
        """Record a spot revocation: the cluster's capacity was reclaimed.

        Called by the fleet's fault plane, not the control loop.  Billing
        for the cluster stops immediately (the provider took the machines
        back), and the cluster lands in the cold pool, where a later
        scale-up may re-rent it at full cold-start price.
        """
        self._transition(cluster, ClusterState.COLD)
        self.timeline.append(
            FleetProvisionEvent(self._fleet.engine.now, cluster.name, "revoke", reason)
        )

    def retire_drained(self) -> None:
        """Retire every draining cluster whose outstanding work hit zero.

        Runs on every tick, and once more when the fleet stops the control
        loops at the last completion — a cluster whose final request *is*
        the fleet's last completion must still stop billing right there,
        not at a tick that will never fire.
        """
        fleet = self._fleet
        for cluster in fleet.clusters:
            if (
                cluster.state is ClusterState.DRAINING
                and fleet.router.traffic[cluster.name].outstanding == 0
            ):
                self._transition(cluster, ClusterState.RETIRED)
                self.timeline.append(
                    FleetProvisionEvent(fleet.engine.now, cluster.name, "retire", "drain complete")
                )

    def _scale_up(self, reason: str) -> bool:
        """Add a cluster: un-drain first, then promote warm, then boot cold."""
        fleet = self._fleet
        now = fleet.engine.now
        # Cheapest capacity: a cluster still draining — it is already warm,
        # loaded, and billed; re-activating it is instantaneous.
        draining = sorted(
            (c for c in fleet.clusters if c.state is ClusterState.DRAINING), key=lambda c: c.name
        )
        if draining:
            cluster = draining[0]
            self._transition(cluster, ClusterState.ACTIVE)
            self.timeline.append(FleetProvisionEvent(now, cluster.name, "undrain", reason))
            return True
        warm = sorted((c for c in fleet.clusters if c.state is ClusterState.WARM), key=lambda c: c.name)
        if warm:
            cluster = warm[0]
            self._start_cluster(cluster, self.config.warm_start_s, "burst-warm", reason)
            self._replenish_warm_pool(reason)
            return True
        # A retired cluster is cold capacity: re-renting it pays the same
        # cold start as a never-used standby.
        cold = sorted(self._cold_capacity(), key=lambda c: c.name)
        if cold:
            self._start_cluster(cold[0], self.config.cold_start_s, "burst-cold", reason)
            return True
        return False

    def _cold_capacity(self):
        """Clusters available at cold-start price (never-started or retired)."""
        return [
            c
            for c in self._fleet.clusters
            if c.state in (ClusterState.COLD, ClusterState.RETIRED)
        ]

    def _start_cluster(self, cluster: "FleetCluster", delay_s: float, action: str, reason: str) -> None:
        fleet = self._fleet
        now = fleet.engine.now
        self._transition(cluster, ClusterState.STARTING)
        self.timeline.append(FleetProvisionEvent(now, cluster.name, action, reason))
        fleet.engine.schedule_after(
            delay_s,
            lambda c=cluster: self._activate(c),
            priority=PROVISIONER_TICK_PRIORITY,
            tag=f"cluster-start:{cluster.name}",
        )

    def _activate(self, cluster: "FleetCluster") -> None:
        if cluster.state is not ClusterState.STARTING:
            return  # retired/changed while booting (defensive; not expected)
        self._transition(cluster, ClusterState.ACTIVE)
        self.timeline.append(
            FleetProvisionEvent(self._fleet.engine.now, cluster.name, "activate", "start delay elapsed")
        )

    def _replenish_warm_pool(self, reason: str) -> None:
        """Keep ``warm_pool_target`` standbys warm by pre-warming cold ones."""
        warm_count = sum(1 for c in self._fleet.clusters if c.state is ClusterState.WARM)
        if warm_count >= self.config.warm_pool_target:
            return
        cold = sorted(self._cold_capacity(), key=lambda c: c.name)
        if not cold:
            return
        cluster = cold[0]
        self._transition(cluster, ClusterState.WARM)
        self.timeline.append(
            FleetProvisionEvent(self._fleet.engine.now, cluster.name, "warm", f"replenish ({reason})")
        )

    def _scale_down(self, reason: str) -> bool:
        """Drain the least-loaded active cluster, respecting the minimum.

        Pin targets are exempt: a pinned tenant can only ever be served by
        its cluster, so draining it would make that tenant unroutable even
        though the rest of the fleet has capacity.
        """
        fleet = self._fleet
        pinned = set(fleet.router.tenant_pins.values())
        active = [
            c for c in fleet.clusters if c.state is ClusterState.ACTIVE and c.name not in pinned
        ]
        all_active = sum(1 for c in fleet.clusters if c.state is ClusterState.ACTIVE)
        if not active or all_active <= self.config.min_active_clusters:
            return False
        traffic = fleet.router.traffic
        cluster = min(active, key=lambda c: (traffic[c.name].outstanding, c.name))
        self._transition(cluster, ClusterState.DRAINING)
        self.timeline.append(FleetProvisionEvent(fleet.engine.now, cluster.name, "drain", reason))
        return True
