"""Request-lifecycle and control-plane spans on the simulation clock.

The :class:`SpanRecorder` is the collection side of the observability plane:
the fleet, the reliability coordinator, the router's health state machine,
and the fault injector call its ``note_*`` hooks from their *cold* paths
(admission, routing, retries, bans, injections — never the per-token loop),
and after the run :meth:`SpanRecorder.record_result` derives the per-request
journey spans from the timestamps every :class:`~repro.simulation.request.Request`
already records (arrival, prompt start, first token, KV-transfer window,
completion).  That split keeps recording zero-overhead when the plane is off
and nearly free when it is on: the hot decode path is never touched.

All span times are **simulated** seconds — the recorder never reads the wall
clock (SIM002), draws no randomness, and schedules nothing, so traced runs
are bit-identical to untraced runs (property-tested).

Span taxonomy (see ``docs/observability.md``):

* ``request`` — one root span per submitted request, from arrival to its
  terminal instant, carrying the census ``outcome`` (``completed`` /
  ``shed`` / ``expired`` / ``incomplete``) so the trace itself closes the
  fleet census ``completed + shed + expired == submitted``.
* ``phase`` — nested ``queue`` / ``prompt`` / ``kv-transfer`` / ``decode``
  child spans on the same track.
* ``lifecycle`` — instants for routing, retries, hedges, shedding,
  degradation, and expiry.
* ``control`` — autoscaler re-purposing, provisioner actions, router
  ban/probation transitions, and fault injections; correlated outages are
  recorded as real duration spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (fleet layers above obs)
    from repro.fleet.fleet import FleetResult
    from repro.simulation.request import Request

#: Process name of everything that is not attributable to one cluster:
#: admission control, the provisioner, and unrouted requests.
FLEET_PROCESS = "fleet"


@dataclass(slots=True)
class Span:
    """One recorded span (``end_s is None`` marks an instant event).

    Attributes:
        name: Human-readable label shown in the trace viewer.
        cat: Span category (``request`` / ``phase`` / ``lifecycle`` /
            ``control``).
        start_s: Start in simulated seconds.
        end_s: End in simulated seconds, or ``None`` for an instant.
        process: Logical process (a cluster name or :data:`FLEET_PROCESS`).
        thread: Logical track inside the process (a machine name, a
            ``request-<id>`` track, or a control-plane track).
        args: JSON-friendly key/value payload attached to the event.
    """

    name: str
    cat: str
    start_s: float
    end_s: float | None = None
    process: str = FLEET_PROCESS
    thread: str = "control"
    args: dict[str, Any] = field(default_factory=dict)


def _cluster_of_machine(machine_name: str | None) -> str | None:
    """Cluster prefix of a fleet machine name (``cluster-0/prompt-1``)."""
    if machine_name is None or "/" not in machine_name:
        return None
    return machine_name.split("/", 1)[0]


class SpanRecorder:
    """Collects spans during a run and derives journeys afterwards.

    Live hooks only annotate (routing history, expiry instants, control
    actions); the per-request journey spans are derived once, post-run, in
    :meth:`record_result` from request telemetry that exists anyway.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: Routing history per logical request id: (time_s, cluster, kind).
        self._routes: dict[int, list[tuple[float, str, str]]] = {}
        #: Expiry instants per request id (``Request`` itself records none).
        self._expire_times: dict[int, float] = {}
        #: Open correlated-outage windows per cluster name.
        self._open_outages: dict[str, float] = {}
        self._result_recorded = False

    @property
    def span_count(self) -> int:
        """Spans and instants recorded so far."""
        return len(self.spans)

    # -- generic recording -------------------------------------------------------------

    def instant(
        self,
        name: str,
        time_s: float,
        *,
        cat: str = "lifecycle",
        process: str = FLEET_PROCESS,
        thread: str = "control",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a point event at ``time_s``."""
        self.spans.append(
            Span(name=name, cat=cat, start_s=time_s, process=process, thread=thread, args=args or {})
        )

    def span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        cat: str = "phase",
        process: str = FLEET_PROCESS,
        thread: str = "control",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a duration span; degenerate (negative) windows are dropped."""
        if end_s < start_s:
            return
        self.spans.append(
            Span(
                name=name, cat=cat, start_s=start_s, end_s=end_s,
                process=process, thread=thread, args=args or {},
            )
        )

    # -- live lifecycle hooks (cold paths only) ----------------------------------------

    def note_route(self, request: "Request", cluster_name: str, time_s: float, kind: str) -> None:
        """One attempt routed (``kind``: ``route`` / ``retry`` / ``hedge``)."""
        self._routes.setdefault(request.request_id, []).append((time_s, cluster_name, kind))

    def note_shed(self, request: "Request", time_s: float) -> None:
        """Admission control rejected the request up front."""
        self.instant(
            "shed", time_s, thread="admission",
            args={"request": request.request_id, "tenant": request.tenant},
        )

    def note_degraded_admission(self, request: "Request", time_s: float) -> None:
        """A would-be-shed request was admitted with a truncated budget."""
        self.instant(
            "degrade-admission", time_s, thread="admission",
            args={"request": request.request_id, "tenant": request.tenant,
                  "output_tokens": request.output_tokens},
        )

    def note_expired(self, request: "Request", time_s: float) -> None:
        """The lifecycle layer cancelled the request (deadline / retry budget)."""
        self._expire_times[request.request_id] = time_s
        self.instant("expire", time_s, thread="lifecycle", args={"request": request.request_id})

    def note_retry_scheduled(self, request: "Request", delay_s: float, time_s: float) -> None:
        """A retry was scheduled with backoff ``delay_s``."""
        self.instant(
            "retry-scheduled", time_s, thread="lifecycle",
            args={"request": request.request_id, "backoff_s": round(delay_s, 6)},
        )

    def note_hedge(self, request: "Request", cluster_name: str, time_s: float) -> None:
        """A hedge clone was launched onto ``cluster_name``."""
        self.instant(
            "hedge-launched", time_s, thread="lifecycle",
            args={"request": request.request_id, "cluster": cluster_name},
        )

    def note_hedge_won(self, request: "Request", cluster_name: str, time_s: float) -> None:
        """The hedge clone beat the primary attempt."""
        self.instant(
            "hedge-won", time_s, thread="lifecycle",
            args={"request": request.request_id, "cluster": cluster_name},
        )

    # -- live control-plane hooks ------------------------------------------------------

    def note_health_transition(self, cluster_name: str, state: str, time_s: float) -> None:
        """The router's reliability state machine moved ``cluster_name`` to ``state``."""
        self.instant(
            f"health:{state}", time_s, cat="control",
            process=cluster_name, thread="health", args={"state": state},
        )

    def note_injection(self, kind: str, target: str, fired: bool, time_s: float) -> None:
        """A fault injection fired (or was skipped by its deterministic guard)."""
        cluster = _cluster_of_machine(target) or (target if target else FLEET_PROCESS)
        self.instant(
            f"fault:{kind}", time_s, cat="control",
            process=cluster if cluster.startswith("cluster") else FLEET_PROCESS,
            thread="faults",
            args={"kind": kind, "target": target, "fired": fired},
        )

    def note_outage(self, cluster_name: str, start: bool, time_s: float) -> None:
        """Open (``start=True``) or close a correlated-outage window."""
        if start:
            self._open_outages[cluster_name] = time_s
            return
        begun = self._open_outages.pop(cluster_name, None)
        if begun is not None:
            self.span(
                "outage", begun, time_s, cat="control",
                process=cluster_name, thread="faults",
            )

    # -- post-run derivation -----------------------------------------------------------

    def record_result(self, result: "FleetResult") -> dict[str, int]:
        """Derive the journey and control-plane spans from a finished run.

        Idempotent: a second call is a no-op, so the CLI and tests can both
        finalize defensively.

        Returns:
            The span census: root-span count per outcome.
        """
        census: dict[str, int] = {}
        if self._result_recorded:
            for span in self.spans:
                if span.cat == "request":
                    outcome = str(span.args.get("outcome", "incomplete"))
                    census[outcome] = census.get(outcome, 0) + 1
            return census
        self._result_recorded = True
        for request in result.requests:
            outcome = self._record_journey(request, result.duration_s)
            census[outcome] = census.get(outcome, 0) + 1
        self._record_control_plane(result)
        # Close any outage window the run ended inside of.
        for cluster_name, begun in sorted(self._open_outages.items()):
            self.span(
                "outage", begun, max(begun, result.duration_s), cat="control",
                process=cluster_name, thread="faults",
            )
        self._open_outages.clear()
        return census

    def _record_journey(self, request: "Request", duration_s: float) -> str:
        request_id = request.request_id
        routes = self._routes.get(request_id, [])
        if request.is_complete:
            outcome = "completed"
        elif request.shed:
            outcome = "shed"
        elif request.expired:
            outcome = "expired"
        else:
            outcome = "incomplete"  # horizon-capped runs only; never under drain
        process = (
            _cluster_of_machine(request.token_machine)
            or _cluster_of_machine(request.prompt_machine)
            or (routes[-1][1] if routes else FLEET_PROCESS)
        )
        thread = f"request-{request_id}"
        start = request.arrival_time
        end = self._journey_end(request, duration_s)
        args: dict[str, Any] = {
            "outcome": outcome,
            "tenant": request.tenant,
            "prompt_tokens": request.prompt_tokens,
            "output_tokens": request.output_tokens,
            "attempts": max(1, len(routes)),
            "restarts": request.restarts,
            "parent": None,
        }
        if request.degraded:
            args["degraded"] = True
        self.span(f"request {request_id}", start, end, cat="request",
                  process=process, thread=thread, args=args)
        child_args = {"parent": request_id}
        if request.prompt_start_time is not None:
            self.span("queue", start, request.prompt_start_time,
                      process=process, thread=thread, args=child_args)
            if request.first_token_time is not None:
                self.span(
                    "prompt", request.prompt_start_time, request.first_token_time,
                    process=process, thread=thread,
                    args={**child_args, "machine": request.prompt_machine},
                )
        if request.kv_transfer_start is not None and request.kv_transfer_end is not None:
            self.span("kv-transfer", request.kv_transfer_start, request.kv_transfer_end,
                      process=process, thread=thread, args=child_args)
        if request.completion_time is not None:
            decode_start = (
                request.kv_transfer_end
                if request.kv_transfer_end is not None
                else request.first_token_time
            )
            if decode_start is not None:
                self.span(
                    "decode", decode_start, request.completion_time,
                    process=process, thread=thread,
                    args={**child_args, "machine": request.token_machine},
                )
        for time_s, cluster_name, kind in routes:
            self.instant(kind, time_s, process=process, thread=thread,
                         args={**child_args, "cluster": cluster_name})
        return outcome

    def _journey_end(self, request: "Request", duration_s: float) -> float:
        """Terminal instant of a request's root span.

        Completions and expirations carry exact instants; shed requests were
        rejected at arrival (zero-length span); anything still in flight at a
        horizon cap is clipped to the run window.
        """
        if request.completion_time is not None:
            return request.completion_time
        expire_time = self._expire_times.get(request.request_id)
        if expire_time is not None:
            return expire_time
        if request.shed:
            return request.arrival_time
        return max(request.arrival_time, duration_s)

    def _record_control_plane(self, result: "FleetResult") -> None:
        for cluster_name in sorted(result.cluster_results):
            autoscaler = result.cluster_results[cluster_name].autoscaler
            if autoscaler is None:
                continue
            for event in autoscaler.timeline:
                self.instant(
                    f"autoscale:{event.action}", event.time_s, cat="control",
                    process=cluster_name, thread="autoscaler",
                    args={
                        "machine": event.machine,
                        "from": event.from_pool,
                        "to": event.to_pool,
                        "reason": event.reason,
                    },
                )
        if result.provisioner is not None:
            for event in result.provisioner.timeline:
                self.instant(
                    f"provision:{event.action}", event.time_s, cat="control",
                    thread="provisioner",
                    args={"cluster": event.cluster, "reason": event.reason},
                )
