"""The observability plane: opt-in wiring of spans + metrics onto a fleet.

``FleetSimulation.observe(ObservabilityConfig(...))`` creates an
:class:`ObservabilityPlane` and every hook in the fleet/reliability/router/
fault layers is guarded by ``if self.obs is not None`` — a fleet that never
calls ``observe()`` takes one attribute check per cold-path branch and pays
nothing else (the ``repro.obs`` modules are imported lazily by
``observe()`` itself).

The plane owns three artifacts:

* a :class:`~repro.obs.spans.SpanRecorder` (request journeys + control
  plane), exported as Perfetto trace-event JSON;
* a :class:`~repro.obs.metrics.MetricsRegistry` fed by a recurring
  :class:`~repro.obs.metrics.MetricsTicker` (JSONL/CSV + Prometheus text);
* a provenance block for ``repro-sim fleet --json``.

Everything here runs on simulated time; the wall-clock profiler
(:mod:`repro.obs.profiler`) is deliberately *not* part of the plane — it is
a perf-bench instrument, attached only by ``repro.metrics.perf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import DEFAULT_TICK_INTERVAL_S, MetricsRegistry, MetricsTicker
from repro.obs.perfetto import export_trace, span_census
from repro.obs.spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only (fleet layers above obs)
    from repro.fleet.fleet import FleetResult, FleetSimulation
    from repro.simulation.request import Request


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to record and where to write it.

    Attributes:
        trace_path: Perfetto trace-event JSON output path (``None`` keeps
            the trace in memory only).
        metrics_path: Metrics time-series output path; ``.csv`` selects CSV,
            anything else JSONL, and a ``.prom`` Prometheus snapshot is
            written alongside.
        interval_s: Simulated seconds between metrics samples.
        spans: Record lifecycle/control spans.
        metrics: Run the metrics ticker.
    """

    trace_path: str | None = None
    metrics_path: str | None = None
    interval_s: float = DEFAULT_TICK_INTERVAL_S
    spans: bool = True
    metrics: bool = True


class ObservabilityPlane:
    """Span recorder + metrics ticker bound to one fleet simulation."""

    def __init__(self, config: ObservabilityConfig) -> None:
        self.config = config
        self.recorder: SpanRecorder | None = SpanRecorder() if config.spans else None
        self.registry: MetricsRegistry | None = MetricsRegistry() if config.metrics else None
        self.ticker: MetricsTicker | None = None
        self._census: dict[str, int] = {}
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------------------

    def begin(self, fleet: "FleetSimulation") -> None:
        """Arm per-run recording (called at the top of ``FleetSimulation.run``)."""
        if self.registry is not None:
            self.ticker = MetricsTicker(fleet, self.registry, self.config.interval_s)
            self.ticker.start()
        if self.recorder is not None and fleet.router.reliability is not None:
            fleet.router.observe_health(self._on_health_transition)

    def stop_ticker(self) -> None:
        """Stop sampling; called when the fleet census closes.

        Without this the ticker would keep the engine alive past the last
        completion, inflating ``engine.now`` — the same reason the fleet
        stops its autoscalers and provisioner there.
        """
        if self.ticker is not None:
            self.ticker.stop()

    def finalize(self, result: "FleetResult") -> None:
        """Derive journey spans and the span census from the finished run."""
        if self._finalized:
            return
        self._finalized = True
        if self.recorder is not None:
            self._census = self.recorder.record_result(result)

    # -- span hook forwarding (every caller guards on ``fleet.obs is not None``) -------

    def _on_health_transition(self, cluster_name: str, state: str, now: float) -> None:
        if self.recorder is not None:
            self.recorder.note_health_transition(cluster_name, state, now)

    def note_route(self, request: "Request", cluster_name: str, time_s: float, kind: str) -> None:
        if self.recorder is not None:
            self.recorder.note_route(request, cluster_name, time_s, kind)

    def note_shed(self, request: "Request", time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_shed(request, time_s)

    def note_degraded_admission(self, request: "Request", time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_degraded_admission(request, time_s)

    def note_expired(self, request: "Request", time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_expired(request, time_s)

    def note_retry_scheduled(self, request: "Request", delay_s: float, time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_retry_scheduled(request, delay_s, time_s)

    def note_hedge(self, request: "Request", cluster_name: str, time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_hedge(request, cluster_name, time_s)

    def note_hedge_won(self, request: "Request", cluster_name: str, time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_hedge_won(request, cluster_name, time_s)

    def note_injection(self, kind: str, target: str, fired: bool, time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_injection(kind, target, fired, time_s)

    def note_outage(self, cluster_name: str, start: bool, time_s: float) -> None:
        if self.recorder is not None:
            self.recorder.note_outage(cluster_name, start, time_s)

    # -- exports -----------------------------------------------------------------------

    @property
    def span_count(self) -> int:
        """Spans recorded (0 when span recording is off)."""
        return self.recorder.span_count if self.recorder is not None else 0

    def census(self) -> dict[str, int]:
        """Root-span outcomes derived at :meth:`finalize` (empty before it)."""
        return dict(self._census)

    def export(self) -> dict[str, Any]:
        """Write configured artifacts; returns the ``--json`` provenance block."""
        provenance: dict[str, Any] = {
            "trace_path": self.config.trace_path,
            "metrics_path": self.config.metrics_path,
            "ticker_interval_s": self.config.interval_s if self.registry is not None else None,
            "span_count": self.span_count,
            "metric_samples": self.registry.num_samples if self.registry is not None else 0,
            "span_census": dict(self._census),
        }
        if self.recorder is not None and self.config.trace_path is not None:
            payload = export_trace(self.recorder, self.config.trace_path)
            provenance["trace_events"] = len(payload["traceEvents"])
            provenance["span_census"] = span_census(payload)
        if self.registry is not None and self.config.metrics_path is not None:
            path = self.config.metrics_path
            if path.endswith(".csv"):
                text = self.registry.to_csv()
            else:
                text = self.registry.to_jsonl()
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            prom_path = path.rsplit(".", 1)[0] + ".prom"
            with open(prom_path, "w", encoding="utf-8") as handle:
                handle.write(self.registry.prometheus_text())
            provenance["prometheus_path"] = prom_path
        return provenance
