"""Opt-in observability plane: spans, metrics, traces, and phase profiling.

See ``docs/observability.md``.  Nothing in this package is imported by the
simulation layers unless a run opts in via ``FleetSimulation.observe`` (or
the perf bench attaches the profiler) — observability off means
observability unpaid.
"""

from repro.obs.metrics import (
    DEFAULT_TICK_INTERVAL_S,
    Histogram,
    MetricsRegistry,
    MetricsTicker,
    metric_key,
)
from repro.obs.perfetto import build_trace, export_trace, span_census, validate_trace
from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.obs.profiler import PhaseProfiler, bucket_for_tag
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "DEFAULT_TICK_INTERVAL_S",
    "Histogram",
    "MetricsRegistry",
    "MetricsTicker",
    "ObservabilityConfig",
    "ObservabilityPlane",
    "PhaseProfiler",
    "Span",
    "SpanRecorder",
    "bucket_for_tag",
    "build_trace",
    "export_trace",
    "metric_key",
    "span_census",
    "validate_trace",
]
