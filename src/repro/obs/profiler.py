"""Wall-time attribution of engine events to subsystem phases.

The :class:`PhaseProfiler` answers "where does the *wall clock* go?" —
routing probes vs machine iteration stepping vs fault handling — without
touching the simulated clock.  It wraps ``engine.schedule_at`` (the single
choke point every ``schedule_after``/``schedule_recurring`` call routes
through) so each scheduled action is timed with
:func:`time.perf_counter` when it fires and charged to a bucket derived
from its event tag.

This is the one wall-clock consumer in ``repro.obs`` — it lives on the
perf-measurement side of the SIM002 line (allow-listed in
``repro.analysis.rules`` next to ``metrics/perf.py``) and is never armed by
the simulation itself: only the perf bench (`python -m repro.metrics.perf
--phase-profile`) attaches it.  Attribution is *self* time per event
callback; an event that schedules more events is not charged for them.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engine import SimulationEngine

#: ``(tag prefix, bucket)`` attribution table, checked in order.  Untagged
#: events are the machines' iteration start/finish callbacks — the decode
#: hot path — and fall through to ``machine-step``.
TAG_BUCKETS: tuple[tuple[str, str], ...] = (
    ("fleet-arrival:", "routing"),
    ("arrival:", "routing"),
    ("kv-transfer:", "kv-transfer"),
    ("fault:", "faults"),
    ("failure:", "faults"),
    ("ttft-deadline:", "lifecycle"),
    ("e2e-deadline:", "lifecycle"),
    ("hedge:", "lifecycle"),
    ("retry:", "lifecycle"),
    ("autoscaler", "autoscale"),
    ("fleet-provisioner", "provision"),
    ("cluster-start:", "provision"),
    ("metrics-tick", "observability"),
)

DEFAULT_BUCKET = "machine-step"


def bucket_for_tag(tag: str) -> str:
    """Map an event tag to its profiling bucket."""
    for prefix, bucket in TAG_BUCKETS:
        if tag.startswith(prefix):
            return bucket
    return DEFAULT_BUCKET


class PhaseProfiler:
    """Attaches to one engine and accumulates wall seconds per phase bucket.

    Usage::

        profiler = PhaseProfiler()
        profiler.attach(engine)
        ...run...
        profiler.detach()
        report = profiler.snapshot()
    """

    def __init__(self) -> None:
        self.wall_s: dict[str, float] = {}
        self.events: dict[str, int] = {}
        self._engine: "SimulationEngine | None" = None
        self._original_schedule_at: Callable | None = None

    @property
    def attached(self) -> bool:
        """Whether the profiler is currently wrapping an engine."""
        return self._engine is not None

    def attach(self, engine: "SimulationEngine") -> None:
        """Interpose on ``engine.schedule_at`` (idempotent per engine)."""
        if self._engine is not None:
            raise RuntimeError("profiler is already attached to an engine")
        self._engine = engine
        original = engine.schedule_at
        self._original_schedule_at = original
        wall_s = self.wall_s
        events = self.events
        perf_counter = time.perf_counter

        def timed_schedule_at(time_s, action, priority=0, tag=""):
            bucket = bucket_for_tag(tag)

            def timed_action():
                begin = perf_counter()
                try:
                    action()
                finally:
                    wall_s[bucket] = wall_s.get(bucket, 0.0) + (perf_counter() - begin)
                    events[bucket] = events.get(bucket, 0) + 1

            return original(time_s, timed_action, priority=priority, tag=tag)

        # Instance attribute shadows the bound method; schedule_after and
        # RecurringTask re-arms route through self.schedule_at, so one wrap
        # covers every scheduling path.
        engine.schedule_at = timed_schedule_at  # type: ignore[method-assign]

    def detach(self) -> None:
        """Remove the interposer, restoring the engine's own method."""
        if self._engine is None:
            return
        # Deleting the instance attribute re-exposes the class method; the
        # attribute is guaranteed to exist because attach() set it.
        del self._engine.schedule_at  # type: ignore[misc]
        self._engine = None
        self._original_schedule_at = None

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-bucket ``{"wall_s": ..., "events": ...}``, sorted by cost."""
        return {
            bucket: {
                "wall_s": round(self.wall_s[bucket], 6),
                "events": self.events.get(bucket, 0),
            }
            for bucket in sorted(self.wall_s, key=lambda b: -self.wall_s[b])
        }

    def total_wall_s(self) -> float:
        """Total attributed wall seconds."""
        return sum(self.wall_s.values())
