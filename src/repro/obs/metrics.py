"""Deterministic metrics: a columnar time series sampled on the sim clock.

The :class:`MetricsRegistry` is a deliberately small reimplementation of the
Prometheus data model for a deterministic simulator: metric names carry
label sets in the familiar ``name{label="value"}`` spelling, every sample
row records the *same* column set (so the export is columnar, not sparse),
and all timestamps are simulated seconds.  The :class:`MetricsTicker` is the
only producer — a recurring engine event at
:data:`~repro.simulation.events.METRICS_TICK_PRIORITY` (the bottom of the
priority ladder), so each sample observes an instant that no controller
will touch again.

The ticker is a pure observer: it draws no randomness, schedules nothing
besides its own recurrence, and mutates no simulation state.  The gauges it
reads include the machines' lazily-committed fast-forward counters
(``pending_decode_tokens`` & co trigger ``_ff_sync``), which is exactly the
commit-on-observe path the autoscaler already exercises and that the ff
parity suite pins as bit-neutral.  The observability parity test
(``tests/property/test_obs_parity.py``) pins the end-to-end claim: a ticked
run is bit-identical to an unticked one.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.simulation.events import METRICS_TICK_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - typing only (fleet layers above obs)
    from repro.fleet.fleet import FleetSimulation

#: Default simulated seconds between two metrics samples.
DEFAULT_TICK_INTERVAL_S = 1.0

#: Histogram bucket bounds (requests) for fleet-wide outstanding depth.
OUTSTANDING_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def metric_key(name: str, **labels: str) -> str:
    """Spell a metric column key Prometheus-style: ``name{label="value"}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, str]:
    """Split a column key into ``(bare_name, label_block)`` (block may be '')."""
    if "{" not in key:
        return key, ""
    name, _, rest = key.partition("{")
    return name, "{" + rest


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = ordered
        #: Per-bound counts (non-cumulative); overflow lives in ``total``.
        self.counts = [0] * len(ordered)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the buckets."""
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(+Inf, total)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.total))
        return out

    def to_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Columnar sim-time series plus named histograms.

    Every :meth:`sample` call appends one row; after the first row the
    column set is frozen — a producer adding or dropping a column mid-run
    is a bug (it would silently misalign the columnar export) and raises.
    """

    def __init__(self) -> None:
        self.times: list[float] = []
        self.columns: dict[str, list[float]] = {}
        self.histograms: dict[str, Histogram] = {}

    @property
    def num_samples(self) -> int:
        """Rows recorded so far."""
        return len(self.times)

    def sample(self, time_s: float, values: Mapping[str, float]) -> None:
        """Append one row of gauge/counter readings at ``time_s``."""
        if not self.columns:
            for key in values:
                self.columns[key] = []
        elif set(values) != set(self.columns):
            missing = sorted(set(self.columns) - set(values))
            extra = sorted(set(values) - set(self.columns))
            raise ValueError(
                f"metrics sample changed the column set (missing={missing}, extra={extra})"
            )
        self.times.append(time_s)
        for key, series in self.columns.items():
            series.append(float(values[key]))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Fetch (or create) the named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        return hist

    # -- exports -----------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per sample row (``time_s`` plus every column)."""
        lines = []
        keys = sorted(self.columns)
        for row, time_s in enumerate(self.times):
            record = {"time_s": time_s}
            for key in keys:
                record[key] = self.columns[key][row]
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        """Header + one line per sample (columns sorted for determinism)."""
        keys = sorted(self.columns)
        header = ",".join(["time_s", *keys])
        lines = [header]
        for row, time_s in enumerate(self.times):
            cells = [f"{time_s:g}"] + [f"{self.columns[key][row]:g}" for key in keys]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def prometheus_text(self) -> str:
        """Prometheus exposition-format snapshot of the *final* sample.

        A simulator has no scrape loop — this is the end-of-run state of
        every gauge plus the full cumulative histograms, for tooling that
        already speaks the format.
        """
        lines: list[str] = []
        seen_names: set[str] = set()
        for key in sorted(self.columns):
            series = self.columns[key]
            if not series:
                continue
            name, labels = split_metric_key(key)
            if name not in seen_names:
                seen_names.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {series[-1]:g}")
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append(f"# TYPE {name} histogram")
            for le, count in hist.cumulative():
                le_text = "+Inf" if le == float("inf") else f"{le:g}"
                lines.append(f'{name}_bucket{{le="{le_text}"}} {count}')
            lines.append(f"{name}_sum {hist.sum:g}")
            lines.append(f"{name}_count {hist.total}")
        return "\n".join(lines) + ("\n" if lines else "")


class MetricsTicker:
    """Recurring sim-time sampler feeding a :class:`MetricsRegistry`.

    Args:
        fleet: The fleet under observation.
        registry: Destination time series.
        interval_s: Simulated seconds between samples.
    """

    def __init__(
        self,
        fleet: "FleetSimulation",
        registry: MetricsRegistry,
        interval_s: float = DEFAULT_TICK_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.fleet = fleet
        self.registry = registry
        self.interval_s = interval_s
        self._task = None

    def start(self) -> None:
        """Arm the recurring sampling event (first sample at t=0)."""
        if self._task is not None:
            return
        self._task = self.fleet.engine.schedule_recurring(
            self.interval_s,
            self._tick,
            priority=METRICS_TICK_PRIORITY,
            tag="metrics-tick",
            first_delay=0.0,
        )

    def stop(self) -> None:
        """Cancel the recurrence (called when the fleet census closes)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- sampling ----------------------------------------------------------------------

    def _tick(self) -> None:
        fleet = self.fleet
        now = fleet.engine.now
        values: dict[str, float] = {}
        total_busy = 0
        total_failed = 0
        total_power = 0.0
        for cluster in fleet.clusters:
            scheduler = cluster.scheduler
            live = scheduler.machines
            failed = scheduler.failed_machines
            busy = 0
            power = 0.0
            prompt_tokens = 0
            decode_tokens = 0
            occupancy = 0
            kv_headroom_min = 1.0
            for machine in live:
                if machine.is_busy:
                    busy += 1
                    power += machine.spec.provisioned_power_watts
                prompt_tokens += machine.pending_prompt_tokens
                decode_tokens += machine.pending_decode_tokens
                occupancy += machine.active_token_requests
                headroom = machine.memory_headroom_fraction
                if headroom < kv_headroom_min:
                    kv_headroom_min = headroom
            labels = {"cluster": cluster.name}
            traffic = fleet.router.traffic.get(cluster.name)
            values[metric_key("queue_prompt_tokens", **labels)] = prompt_tokens
            values[metric_key("queue_decode_tokens", **labels)] = decode_tokens
            values[metric_key("batch_occupancy_requests", **labels)] = occupancy
            values[metric_key("kv_headroom_min_fraction", **labels)] = kv_headroom_min
            values[metric_key("outstanding_requests", **labels)] = (
                traffic.outstanding if traffic is not None else 0
            )
            values[metric_key("machines_busy", **labels)] = busy
            values[metric_key("machines_failed", **labels)] = len(failed)
            values[metric_key("power_draw_watts", **labels)] = power
            values[metric_key("cluster_routable", **labels)] = 1.0 if cluster.routable else 0.0
            total_busy += busy
            total_failed += len(failed)
            total_power += power
        outstanding = fleet.router.total_outstanding()
        values["fleet_outstanding_requests"] = outstanding
        values["fleet_completed_total"] = fleet._completed
        values["fleet_shed_total"] = fleet._shed
        values["fleet_expired_total"] = fleet._expired
        values["fleet_bans_total"] = fleet.router.bans_issued
        values["fleet_machines_busy"] = total_busy
        values["fleet_machines_failed"] = total_failed
        values["fleet_power_draw_watts"] = total_power
        lifecycle = fleet.lifecycle
        values["fleet_retries_scheduled_total"] = (
            lifecycle.retries_scheduled if lifecycle is not None else 0
        )
        values["fleet_hedges_launched_total"] = (
            lifecycle.hedges_launched if lifecycle is not None else 0
        )
        self.registry.sample(now, values)
        self.registry.histogram(
            "fleet_outstanding_depth", OUTSTANDING_BUCKETS
        ).observe(outstanding)
