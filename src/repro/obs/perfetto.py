"""Chrome/Perfetto trace-event export for recorded spans.

Emits the JSON trace-event format (the ``traceEvents`` array flavour) that
both ``chrome://tracing`` and `ui.perfetto.dev <https://ui.perfetto.dev>`_
load directly:

* every logical *process* (the fleet control plane and each cluster) gets a
  deterministic ``pid`` with an ``M``/``process_name`` metadata record;
* every logical *thread* (machines, per-request journey tracks, and
  control-plane tracks) gets a deterministic ``tid`` with an
  ``M``/``thread_name`` record;
* duration spans are complete ``X`` events (``ts``/``dur`` in microseconds
  of *simulated* time) and point events are ``i`` instants.

Requests get their own ``request-<id>`` track instead of being drawn on the
machine that served them: journeys overlap freely in time, and interleaved
``X`` events on one track would nest incorrectly in the viewer.  Causality
back to the parent request is carried in ``args.parent``.

Determinism: pids/tids are assigned by sorted order, events are sorted by
``(ts, pid, tid, name)``, and the JSON is dumped with sorted keys — the
trace file for a given run is byte-stable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import FLEET_PROCESS, SpanRecorder

#: Trace-event `ph` values used by the exporter.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_METADATA = "M"

_US = 1_000_000  # simulated seconds -> microseconds


def _sort_tracks(names: set[str]) -> list[str]:
    """Deterministic, human-friendly track order.

    Splits trailing integers so ``request-9`` sorts before ``request-10``.
    """

    def key(name: str) -> tuple:
        head, _, tail = name.rpartition("-")
        if tail.isdigit():
            return (0, head, int(tail))
        return (1, name, 0)

    return sorted(names, key=key)


def build_trace(recorder: SpanRecorder) -> dict[str, Any]:
    """Assemble the trace-event payload from a recorder's spans."""
    processes: dict[str, int] = {}
    threads: dict[tuple[str, str], int] = {}
    process_tracks: dict[str, set[str]] = {}
    for span in recorder.spans:
        process_tracks.setdefault(span.process, set()).add(span.thread)
    ordered_processes = sorted(
        process_tracks, key=lambda name: (name != FLEET_PROCESS, name)
    )
    events: list[dict[str, Any]] = []
    next_tid = 1
    for pid, process in enumerate(ordered_processes, start=1):
        processes[process] = pid
        events.append(
            {
                "ph": PH_METADATA,
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        for thread in _sort_tracks(process_tracks[process]):
            threads[(process, thread)] = next_tid
            events.append(
                {
                    "ph": PH_METADATA,
                    "name": "thread_name",
                    "pid": pid,
                    "tid": next_tid,
                    "args": {"name": thread},
                }
            )
            next_tid += 1
    body: list[dict[str, Any]] = []
    for span in recorder.spans:
        pid = processes[span.process]
        tid = threads[(span.process, span.thread)]
        record: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": round(span.start_s * _US, 3),
            "args": span.args,
        }
        if span.end_s is None:
            record["ph"] = PH_INSTANT
            record["s"] = "t"  # thread-scoped instant
        else:
            record["ph"] = PH_COMPLETE
            record["dur"] = round((span.end_s - span.start_s) * _US, 3)
        body.append(record)
    body.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {
        "traceEvents": events + body,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "exporter": "repro.obs"},
    }


def export_trace(recorder: SpanRecorder, path: str | None = None) -> dict[str, Any]:
    """Build the payload and optionally write it to ``path`` (byte-stable)."""
    payload = build_trace(recorder)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
    return payload


def validate_trace(payload: dict[str, Any]) -> list[str]:
    """Schema-check a trace payload; returns a list of problems (empty = ok).

    Checks the invariants the satellite task names: ``X`` events are
    complete (non-negative ``dur``), any ``B``/``E`` pairs balance per
    track, timestamps are monotone in file order, and every event's
    ``pid``/``tid`` maps to a named process/thread.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    for event in events:
        if event.get("ph") != PH_METADATA:
            continue
        if event.get("name") == "process_name":
            named_pids.add(event["pid"])
        elif event.get("name") == "thread_name":
            named_tids.add((event["pid"], event["tid"]))
    last_ts: float | None = None
    open_stacks: dict[tuple[int, int], int] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph == PH_METADATA:
            continue
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                problems.append(f"event {index} missing required field {field!r}")
        pid = event.get("pid")
        tid = event.get("tid")
        if pid not in named_pids:
            problems.append(f"event {index} references unnamed pid {pid}")
        if (pid, tid) not in named_tids:
            problems.append(f"event {index} references unnamed tid {tid} in pid {pid}")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if ts < 0:
                problems.append(f"event {index} has negative ts {ts}")
            if last_ts is not None and ts < last_ts:
                problems.append(f"event {index} breaks ts monotonicity ({ts} < {last_ts})")
            last_ts = float(ts)
        if ph == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index} is an X event with bad dur {dur!r}")
        elif ph == "B":
            open_stacks[(pid, tid)] = open_stacks.get((pid, tid), 0) + 1
        elif ph == "E":
            depth = open_stacks.get((pid, tid), 0)
            if depth == 0:
                problems.append(f"event {index} is an E with no matching B on ({pid}, {tid})")
            else:
                open_stacks[(pid, tid)] = depth - 1
        elif ph != PH_INSTANT:
            problems.append(f"event {index} has unsupported ph {ph!r}")
    for (pid, tid), depth in sorted(open_stacks.items()):
        if depth:
            problems.append(f"track ({pid}, {tid}) ends with {depth} unclosed B event(s)")
    return problems


def span_census(payload: dict[str, Any]) -> dict[str, int]:
    """Count root request spans per ``outcome`` — closes the fleet census."""
    census: dict[str, int] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") == PH_COMPLETE and event.get("cat") == "request":
            outcome = str(event.get("args", {}).get("outcome", "incomplete"))
            census[outcome] = census.get(outcome, 0) + 1
    return census
