"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 and EXPERIMENTS.md).  The experiments are deterministic
simulations, not micro-benchmarks, so each one is executed exactly once via
``benchmark.pedantic(..., rounds=1, iterations=1)``; pytest-benchmark then
records its wall-clock cost while the test body asserts (and prints) the
paper-shaped result.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Callable, Mapping

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark and return its result."""

    def _run(function: Callable, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def print_table(title: str, rows: Mapping[str, Mapping[str, float]], float_format: str = "{:.3f}") -> None:
    """Pretty-print a nested mapping as an aligned table (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(empty)")
        return
    columns = list(next(iter(rows.values())).keys())
    header = f"{'':<28}" + "".join(f"{c:>18}" for c in columns)
    print(header)
    for name, row in rows.items():
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, (int, float)):
                cells.append(f"{float_format.format(value):>18}")
            else:
                cells.append(f"{str(value):>18}")
        print(f"{str(name):<28}" + "".join(cells))
