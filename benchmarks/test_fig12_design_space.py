"""Fig. 12: provisioning design space for Splitwise-HH on the coding workload."""

from repro.experiments import fig12_design_space

from benchmarks.conftest import print_table


def test_fig12_design_space(run_once):
    results = run_once(
        fig12_design_space,
        target_rps=10.0,
        prompt_counts=(2, 3, 4),
        token_counts=(1, 2),
        trace_duration_s=40.0,
    )
    table = {
        f"{p}P,{t}T": {
            "feasible": float(row["feasible"]),
            "cost_per_hour": row["cost_per_hour"],
            "ttft_p90_s": row["ttft_p90"],
            "e2e_p90_s": row["e2e_p90"],
        }
        for (p, t), row in results["grid"].items()
    }
    print_table(f"Fig. 12: design space, Splitwise-HH, coding @ {results['target_rps']} RPS (scaled)", table)
    print("Cost-optimal feasible point (the paper's star):", results["optimal"])

    assert results["grid"]
    feasible = [key for key, row in results["grid"].items() if row["feasible"]]
    infeasible = [key for key, row in results["grid"].items() if not row["feasible"]]
    # The sweep must expose a feasibility frontier: some configurations meet
    # the SLO at the target load and (with the smallest clusters) some do not.
    assert feasible
    assert results["optimal"] in feasible
    optimal_cost = results["grid"][results["optimal"]]["cost_per_hour"]
    assert all(results["grid"][key]["cost_per_hour"] >= optimal_cost for key in feasible)
    # Bigger clusters dominate smaller ones in feasibility.
    if infeasible:
        assert min(feasible) > min(infeasible)
