"""Headline claims: Splitwise's throughput gains at matched power and cost."""

from repro.experiments import headline_claims

from benchmarks.conftest import print_table


def test_headline_claims(run_once):
    results = run_once(
        headline_claims,
        workload="conversation",
        scale=0.15,
        rates=(6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0),
        duration_s=40.0,
    )
    print_table("Sustainable rate (RPS, scaled) per design", {
        "iso-power": results["sustainable_rates_iso_power"],
        "iso-cost": results["sustainable_rates_iso_cost"],
    }, "{:.0f}")
    claims_table = {
        name: {"measured": claim["measured"], "paper": claim["paper"]}
        for name, claim in results["claims"].items()
    }
    print_table("Headline ratios (measured vs paper)", claims_table, "{:.2f}")

    claims = results["claims"]
    # Iso-cost: the best Splitwise design sustains at least the Baseline-H100
    # load (the paper reports 1.4x more throughput at the same cost).
    assert claims["throughput_vs_baseline_h100_iso_cost"]["measured"] >= 1.0
    # Iso-power: the best Splitwise design beats both baselines (the paper
    # reports 2.15x over Baseline-A100 and 2.35x over Baseline-H100).
    assert claims["throughput_vs_baseline_a100_iso_power"]["measured"] >= 1.2
    assert claims["throughput_vs_baseline_h100_iso_power"]["measured"] >= 1.2
    # The winning iso-cost Splitwise design does not cost more than the baseline suite.
    assert claims["cost_ratio_of_best_splitwise_iso_cost"]["measured"] <= 1.1
