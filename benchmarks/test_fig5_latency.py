"""Fig. 5: TTFT vs prompt size, TBT vs batch size, E2E percentiles."""

from repro.experiments import fig5_latency

from benchmarks.conftest import print_table


def test_fig5_latency(run_once):
    results = run_once(fig5_latency, num_requests=400)
    print_table("Fig. 5a: TTFT (ms) vs batched prompt tokens", results["ttft"], "{:.0f}")
    print_table("Fig. 5b: TBT (ms) vs decode batch size", results["tbt"], "{:.1f}")
    print_table("Fig. 5c: E2E latency percentiles (s, no batching)", results["e2e"])

    llama_ttft = results["ttft"]["Llama2-70B"]
    bloom_ttft = results["ttft"]["BLOOM-176B"]
    # Paper anchor: Llama TTFT ~95 ms at ~1500 prompt tokens on DGX-H100
    # (interpolating between the 1024 and 2048 grid points).
    assert llama_ttft[1024] < 95 < llama_ttft[2048]
    # TTFT grows close to linearly, BLOOM slower than Llama.
    assert llama_ttft[8192] > 4 * llama_ttft[512]
    assert bloom_ttft[2048] > llama_ttft[2048]

    llama_tbt = results["tbt"]["Llama2-70B"]
    # Paper anchor: ~28 ms unbatched, about 2x at decode batch 64.
    assert 24 <= llama_tbt[1] <= 33
    assert llama_tbt[64] < 2.6 * llama_tbt[1]

    # Insight III: most E2E time is the token phase (conversation P50 >> TTFT).
    e2e = results["e2e"]["conversation-Llama2-70B"]
    assert e2e["p50"] * 1e3 > 5 * llama_ttft[1024]
    assert e2e["p99"] > e2e["p90"] > e2e["p50"]
