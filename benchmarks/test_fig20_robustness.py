"""Fig. 20: robustness to workload and model changes on fixed clusters."""

from repro.experiments import fig20_robustness
from repro.models.llm import LLAMA2_70B

from benchmarks.conftest import print_table

RATES = (8.0, 12.0)


def test_fig20a_conversation_on_coding_cluster(run_once):
    """Run the conversation trace on clusters provisioned for coding."""
    results = run_once(
        fig20_robustness,
        provisioned_for="coding",
        run_workload="conversation",
        scale=0.2,
        rates=RATES,
        duration_s=50.0,
    )
    table = {name: {
        "ttft_p90_ms@8": per_rate[8.0]["ttft_p90"] * 1e3,
        "tbt_p90_ms@8": per_rate[8.0]["tbt_p90"] * 1e3,
        "slo_ok@8": per_rate[8.0]["slo_ok"],
        "slo_ok@12": per_rate[12.0]["slo_ok"],
    } for name, per_rate in results.items()}
    print_table("Fig. 20a: conversation trace on a coding-provisioned, iso-power cluster", table, "{:.1f}")

    # The homogeneous Splitwise designs morph via the mixed pool and still
    # sustain the foreign workload at moderate load.
    assert results["Splitwise-AA"][8.0]["completion_rate"] >= 0.98
    assert results["Splitwise-HH"][8.0]["completion_rate"] >= 0.98
    assert results["Splitwise-HH"][8.0]["slo_ok"]
    # Splitwise still improves TTFT over the H100 baseline despite the
    # mismatched provisioning.
    assert results["Splitwise-HH"][8.0]["ttft_p90"] <= results["Baseline-H100"][8.0]["ttft_p90"] * 1.1


def test_fig20b_model_change(run_once):
    """Run Llama2-70B on clusters provisioned for BLOOM-176B (conversation)."""
    results = run_once(
        fig20_robustness,
        provisioned_for="conversation",
        run_workload="conversation",
        scale=0.2,
        rates=RATES,
        duration_s=50.0,
        model=LLAMA2_70B,
    )
    table = {name: {
        "e2e_p90_s@12": per_rate[12.0]["e2e_p90"],
        "slo_ok@12": per_rate[12.0]["slo_ok"],
        "completion@12": per_rate[12.0]["completion_rate"],
    } for name, per_rate in results.items()}
    print_table("Fig. 20b: Llama2-70B on the conversation-provisioned (BLOOM-sized) cluster", table)

    # The smaller model is comfortably served by the BLOOM-sized cluster:
    # every Splitwise design completes the trace and meets the SLO at 12 RPS.
    for name, per_rate in results.items():
        if name.startswith("Splitwise"):
            assert per_rate[12.0]["completion_rate"] >= 0.98, name
    assert results["Splitwise-HH"][12.0]["slo_ok"]
    assert results["Splitwise-HHcap"][12.0]["slo_ok"]
