"""Table I: A100 vs H100 specifications and ratios."""

from repro.experiments import table1_hardware_comparison

from benchmarks.conftest import print_table


def test_table1_hardware(run_once):
    table = run_once(table1_hardware_comparison)
    print_table("Table I: A100 vs H100", table)
    assert table["TFLOPs"]["ratio"] > 3.0
    assert table["HBM capacity (GB)"]["ratio"] == 1.0
    assert 1.5 < table["HBM bandwidth (GBps)"]["ratio"] < 1.8
    assert table["Power (W)"]["ratio"] == 1.75
    assert 2.0 < table["Cost per machine ($/hr)"]["ratio"] < 2.3
