"""Ablation (§IV-A): the mixed pool's contribution under bursty overload."""

from repro.core.cluster import ClusterSimulation
from repro.core.designs import splitwise_hh
from repro.workload.generator import generate_trace

from benchmarks.conftest import print_table


def _run_mixed_pool_ablation():
    # A burst well above the split pools' nominal capacity.
    trace = generate_trace("coding", rate_rps=24.0, duration_s=40.0, seed=13)
    design = splitwise_hh(2, 1)
    results = {}
    for label, thresholds in (
        ("mixed pool ON", {}),
        ("mixed pool OFF", {"prompt_queue_threshold": 10**9, "decode_queue_threshold": 10**9}),
    ):
        simulation = ClusterSimulation(design, **thresholds)
        result = simulation.run(trace)
        metrics = result.request_metrics()
        results[label] = {
            "ttft_p90_s": metrics.ttft.p90,
            "e2e_p90_s": metrics.e2e.p90,
            "pool_switches": float(result.scheduler.pool_switches),
            "completion": result.completion_rate,
        }
    return results


def test_ablation_mixed_pool(run_once):
    results = run_once(_run_mixed_pool_ablation)
    print_table("Ablation: Splitwise-HH (2P,1T) under a coding burst, mixed pool on/off", results)

    on, off = results["mixed pool ON"], results["mixed pool OFF"]
    # With overflow disabled no machine ever changes pools.
    assert off["pool_switches"] == 0
    assert on["pool_switches"] > 0
    # The mixed pool absorbs the burst: tail prompt latency improves.
    assert on["ttft_p90_s"] <= off["ttft_p90_s"]
    assert on["e2e_p90_s"] <= off["e2e_p90_s"] * 1.05
