"""Ablation (§IV-C): serialized-only vs adaptive KV-cache transfer."""

from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.hardware.interconnect import INFINIBAND_200, INFINIBAND_400
from repro.hardware.machine import DGX_A100, DGX_H100
from repro.models.llm import LLAMA2_70B
from repro.models.performance import AnalyticalPerformanceModel

from benchmarks.conftest import print_table

PROMPT_SIZES = (128, 512, 1024, 2048, 4096, 8192)


def _run_transfer_policy_comparison():
    results = {}
    for machine, link in ((DGX_A100, INFINIBAND_200), (DGX_H100, INFINIBAND_400)):
        transfer = KVTransferModel(model=LLAMA2_70B, link=link)
        perf = AnalyticalPerformanceModel(LLAMA2_70B, machine)
        for tokens in PROMPT_SIZES:
            prompt_latency = perf.prompt_latency(tokens)
            results[f"{machine.gpu.name}@{tokens}"] = {
                "serialized_ms": transfer.serialized_latency(tokens) * 1e3,
                "per_layer_ms": transfer.per_layer_latency(tokens, prompt_latency) * 1e3,
                "adaptive_ms": transfer.visible_latency(tokens, prompt_latency) * 1e3,
            }
    return results


def test_ablation_kv_transfer_policy(run_once):
    results = run_once(_run_transfer_policy_comparison)
    print_table("Ablation: visible transfer latency by policy (ms)", results, "{:.2f}")

    for key, row in results.items():
        tokens = int(key.split("@")[1])
        # The adaptive policy never does meaningfully worse than the better of
        # the two fixed policies, and for large prompts it matches per-layer.
        best_fixed = min(row["serialized_ms"], row["per_layer_ms"])
        assert row["adaptive_ms"] <= best_fixed * 1.6 + 1.0
        if tokens >= 2048:
            assert row["adaptive_ms"] == row["per_layer_ms"]
            assert row["adaptive_ms"] < row["serialized_ms"]
