"""Ablation (§IV-B): the 2048-token prompt batching limit of the MLS."""

from repro.core.cluster import ClusterSimulation
from repro.core.designs import splitwise_hh
from repro.workload.generator import generate_trace

from benchmarks.conftest import print_table

LIMITS = (512, 2048, 8192)


def _run_prompt_limit_sweep():
    trace = generate_trace("coding", rate_rps=10.0, duration_s=50.0, seed=31)
    results = {}
    for limit in LIMITS:
        simulation = ClusterSimulation(splitwise_hh(2, 1), max_prompt_batch_tokens=limit)
        result = simulation.run(trace)
        metrics = result.request_metrics()
        results[f"limit={limit}"] = {
            "ttft_p50_s": metrics.ttft.p50,
            "ttft_p90_s": metrics.ttft.p90,
            "ttft_p99_s": metrics.ttft.p99,
            "e2e_p90_s": metrics.e2e.p90,
        }
    return results


def test_ablation_prompt_batch_limit(run_once):
    results = run_once(_run_prompt_limit_sweep)
    print_table("Ablation: MLS prompt batch token limit (coding, Splitwise-HH 2P,1T)", results)

    # A very small limit forfeits prompt batching and inflates queueing delay
    # at the tail; the paper's 2048 setting keeps the tail in check.
    assert results["limit=2048"]["ttft_p99_s"] <= results["limit=512"]["ttft_p99_s"]
    # Raising the limit beyond 2048 buys little because per-iteration latency
    # grows superlinearly (Fig. 6a), so P99 does not keep improving much.
    assert results["limit=8192"]["ttft_p99_s"] >= results["limit=2048"]["ttft_p99_s"] * 0.8
