"""Fig. 18: iso-power and iso-cost throughput-optimized cluster summaries."""

from repro.experiments import iso_budget_summary

from benchmarks.conftest import print_table


def test_fig18a_iso_power_summary(run_once):
    results = run_once(iso_budget_summary, budget="power", rate_rps=16.0, duration_s=60.0)
    print_table("Fig. 18a: iso-power throughput-optimized (normalized to Baseline-A100)", results["normalized"])

    raw = results["raw"]
    normalized = results["normalized"]
    # The suites are iso-power by construction (paper machine ratios, scaled).
    powers = [row["power_kw"] for row in raw.values()]
    assert max(powers) / min(powers) < 1.35
    # Splitwise-AA uses the same number of servers and cost as Baseline-A100
    # but sustains the offered load with a valid SLO.
    assert normalized["Splitwise-AA"]["num_servers"] == 1.0
    assert abs(normalized["Splitwise-AA"]["cost_per_hour"] - 1.0) < 0.01
    # H100-based designs use fewer servers at higher cost (Table V ratios).
    assert normalized["Splitwise-HH"]["num_servers"] < 0.7
    assert normalized["Splitwise-HH"]["cost_per_hour"] > 1.0
    # At this load every Splitwise design still meets the SLO.
    for name, row in raw.items():
        if name.startswith("Splitwise"):
            assert row["completion_rate"] >= 0.98, name


def test_fig18b_iso_cost_summary(run_once):
    results = run_once(iso_budget_summary, budget="cost", rate_rps=16.0, duration_s=60.0)
    print_table("Fig. 18b: iso-cost throughput-optimized (normalized to Baseline-A100)", results["normalized"])

    raw = results["raw"]
    # The iso-cost suites have (approximately) matched cost across designs.
    costs = [row["cost_per_hour"] for row in raw.values()]
    assert max(costs) / min(costs) < 1.45
    # A100-heavy designs carry more servers and power for the same cost.
    assert raw["Splitwise-AA"]["num_servers"] > raw["Splitwise-HH"]["num_servers"]
    assert raw["Baseline-A100"]["power_kw"] > raw["Baseline-H100"]["power_kw"] * 1.1
