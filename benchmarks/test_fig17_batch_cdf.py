"""Fig. 17: batched-token occupancy CDFs at low and high load."""

from repro.experiments import fig17_batch_occupancy

from benchmarks.conftest import print_table


def test_fig17_batch_cdf(run_once):
    results = run_once(
        fig17_batch_occupancy, scale=0.2, low_rate=14.0, high_rate=24.0, duration_s=60.0
    )
    print_table("Fig. 17: fraction of busy time at small batches (iso-power, conversation)", results)

    low, high = results["low"], results["high"]
    # At low load the baseline spends most of its time at tiny batches while
    # Splitwise token machines batch much better (paper: 70% <= 15 tokens).
    assert low["baseline_h100_frac_le_15"] > 0.45
    assert low["splitwise_token_frac_le_15"] <= low["baseline_h100_frac_le_15"]
    # At high load the distributions converge as the mixed pool activates.
    low_gap = low["baseline_h100_frac_le_15"] - low["splitwise_token_frac_le_15"]
    high_gap = high["baseline_h100_frac_le_15"] - high["splitwise_token_frac_le_15"]
    assert high_gap <= low_gap + 0.05
