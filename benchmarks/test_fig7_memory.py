"""Fig. 7: GPU memory required vs number of batched tokens (BLOOM-176B)."""

from repro.experiments import fig7_memory

from benchmarks.conftest import print_table


def test_fig7_memory(run_once):
    results = run_once(fig7_memory)
    print_table("Fig. 7: memory (GB) vs cached tokens on a DGX-H100, BLOOM-176B", {
        "memory_gb": results["memory_gb"],
    }, "{:.0f}")
    memory = results["memory_gb"]
    model_size = results["model_size_gb"][0]
    capacity = results["capacity_gb"][0]
    # The curve starts at roughly the model size (~352 GB) ...
    assert abs(memory[1] - model_size) < 30
    # ... grows monotonically with cached tokens ...
    ordered = [memory[k] for k in sorted(memory)]
    assert ordered == sorted(ordered)
    # ... and approaches but does not exceed the machine capacity at the
    # KV-token limit (~60-70k tokens), which is why decode batching saturates.
    assert memory[60000] <= capacity
    assert 30000 < results["max_kv_tokens"][0] < 120000
