"""Ablation (Fig. 2): request-level vs continuous vs mixed continuous batching."""

from repro.core.cluster import ClusterSimulation
from repro.core.designs import baseline_h100
from repro.workload.generator import generate_trace

from benchmarks.conftest import print_table

POLICIES = ("request-level", "continuous", "mixed")


def _run_policies():
    trace = generate_trace("conversation", rate_rps=4.0, duration_s=60.0, seed=21)
    results = {}
    for policy in POLICIES:
        simulation = ClusterSimulation(baseline_h100(1), batching=policy)
        result = simulation.run(trace)
        metrics = result.request_metrics()
        results[policy] = {
            "ttft_p50_s": metrics.ttft.p50,
            "ttft_p99_s": metrics.ttft.p99,
            "tbt_p99_s": metrics.tbt.p99,
            "e2e_p90_s": metrics.e2e.p90,
        }
    return results


def test_ablation_batching_policies(run_once):
    results = run_once(_run_policies)
    print_table("Ablation: batching mechanisms on one DGX-H100 (Fig. 2)", results)

    # Request-level batching forces late arrivals to wait for whole batches:
    # much worse TTFT than either iteration-level scheme.
    assert results["request-level"]["ttft_p99_s"] > 2 * results["mixed"]["ttft_p99_s"]
    assert results["request-level"]["e2e_p90_s"] > results["mixed"]["e2e_p90_s"]
    # Iteration-level scheduling (continuous/mixed) keeps TTFT comparable.
    assert results["continuous"]["ttft_p50_s"] <= results["request-level"]["ttft_p50_s"]
    assert results["mixed"]["ttft_p50_s"] <= results["request-level"]["ttft_p50_s"]
