"""Fig. 15: TTFT / second-token / E2E overhead of the KV-cache transfer."""

from repro.experiments import fig15_transfer_overhead

from benchmarks.conftest import print_table


def test_fig15_kv_overhead(run_once):
    results = run_once(fig15_transfer_overhead)
    print_table(
        "Fig. 15: transfer overhead vs 1-machine baseline (coding-style requests)",
        {
            "e2e overhead (frac)": {
                "per-layer@2048": results["e2e_overhead_per_layer"][2048],
                "serialized@2048": results["e2e_overhead_serialized"][2048],
            },
            "2nd token overhead (frac)": {
                "per-layer@2048": results["second_token_overhead_per_layer"][2048],
                "serialized@2048": results["second_token_overhead_serialized"][2048],
            },
        },
    )
    # Paper: serialized transfer costs up to ~3% E2E; Splitwise's per-layer
    # scheme only ~0.8%.  Second token: +16.5% (per-layer) vs +64% (serialized).
    assert results["e2e_overhead_per_layer"][2048] < results["e2e_overhead_serialized"][2048]
    assert results["e2e_overhead_per_layer"][2048] < 0.05
    assert results["e2e_overhead_serialized"][2048] < 0.10
    assert results["second_token_overhead_per_layer"][2048] < 0.35
    assert 0.3 < results["second_token_overhead_serialized"][2048] < 1.0
    # TTFT is essentially unchanged (small interference only).
    assert results["ttft_per_layer_ms"][2048] < results["ttft_baseline_ms"][2048] * 1.05
