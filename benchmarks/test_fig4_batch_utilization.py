"""Fig. 4: time spent at various active batched token counts (mixed batching)."""

from repro.experiments import fig4_batch_utilization

from benchmarks.conftest import print_table


def test_fig4_batch_utilization(run_once):
    table = run_once(fig4_batch_utilization, rate_rps=2.0, duration_s=120.0)
    print_table("Fig. 4: batch utilization at 2 RPS on one DGX-H100 (paper: 60-70% of time <= 20 tokens)", table)
    # Insight II: mixed continuous batching mostly runs very few active tokens.
    assert table["conversation"]["fraction_at_or_below_20_tokens"] > 0.4
    # The coding service generates so few tokens that it often runs a single one.
    assert table["coding"]["fraction_at_1_token"] > 0.15
    assert table["coding"]["fraction_at_1_token"] > table["conversation"]["fraction_at_1_token"]
