"""Simulator-throughput scaling benchmark — emits ``BENCH_perf.json``.

Unlike the figure benchmarks (which reproduce paper results), this module
benchmarks the *simulator itself*: events/sec and requests/sec at 4-, 16- and
40-machine scale under the short-burst saturation regime of the paper's
robustness study (§VI-G).  Queue depths grow into the hundreds there, which
is exactly where O(queue-length) hot-path accounting turns simulation cost
quadratic in trace length.

The recorded ``SEED_BASELINE`` numbers were measured once on the pre-
incremental-accounting implementation (seed commit, same host class as CI)
with the identical scenario definitions; ``BENCH_perf.json`` records both the
current numbers and the speedup against that baseline so future PRs can
track the trajectory.

Run with::

    pytest benchmarks/test_perf_scaling.py -q -s
"""

from __future__ import annotations

import cProfile
import os
from pathlib import Path

from repro.metrics.perf import (
    SCALING_SCENARIOS,
    profile_top_functions,
    run_perf_scenario,
    write_bench_report,
)

from benchmarks.conftest import print_table

#: Seed-implementation measurements for the identical scenarios (wall-clock
#: seconds and derived rates), recorded before the O(1) hot-path rework.
SEED_BASELINE = {
    "4-machine": {"wall_s": 1.959, "events_per_s": 7487.0, "requests_per_s": 1056.7},
    "16-machine": {"wall_s": 17.635, "events_per_s": 3184.4, "requests_per_s": 447.2},
    "40-machine": {"wall_s": 109.451, "events_per_s": 1302.3, "requests_per_s": 183.0},
}

#: Final simulated time of each scenario.  This is a pure simulation output:
#: it must be bit-identical on every host and across perf-only refactors, so
#: any drift here means simulation *behavior* changed, not just speed.
EXPECTED_SIM_TIME = {
    "4-machine": "172.7535822080592",
    "16-machine": "167.01584566882394",
    "40-machine": "173.58417218336652",
    # Day-scale diurnal trace with the pool autoscaler active: the reported
    # span ends at the last completion (trailing controller-only ticks are
    # excluded so machine-hour windows stay comparable with static runs).
    "diurnal-autoscale": "254.5188606131304",
    # Two mixed-tenant clusters plus one standby behind the slo-feedback
    # fleet router and the cloud-burst provisioner.
    "fleet-burst": "250.29238581678956",
    # Five static mixed-tenant clusters (40 machines) under weighted-rr
    # routing, serial vs sharded across 4 workers on the identical trace.
    # The two entries pinning the SAME value is itself a parity gate: a
    # sharded run that diverged from serial would trip here in tier-1.
    "fleet-parallel": "258.6543126857196",
    "fleet-parallel-4w": "258.6543126857196",
}

#: Regression floor for the headline scenario: the O(1)-accounting simulator
#: must stay comfortably faster than the seed.  The baseline wall times were
#: recorded on one specific host, so comparing them against another host's
#: wall clock measures the runner, not the code — the floor is therefore only
#: enforced when REPRO_PERF_ENFORCE_SPEEDUP=1 (set it when benchmarking on a
#: host comparable to the one that recorded SEED_BASELINE).  The speedup is
#: always *recorded* in BENCH_perf.json either way.
MIN_HEADLINE_SPEEDUP = 2.0

#: Absolute events/sec floor per scenario.  Raised in the columnar-telemetry
#: PR from the seed-implementation numbers to the post-refactor baseline:
#: each floor sits ~4-5x below the recording host's typical throughput, so
#: the gate trips on a genuine regression (e.g. the per-token recording or
#: the rotation's deferred bookkeeping growing back) rather than on a slow
#: or noisy CI runner.  The smoke run fails hard when
#: REPRO_PERF_ENFORCE_FLOOR=1 (set in CI) and a scenario's logical
#: events/sec drops below its floor.
EVENTS_PER_S_FLOOR = {
    # Recording host sustains ~36-42k logical events/s post-refactor.
    "4-machine": 12_000.0,
    # Recording host: ~25-32k.
    "16-machine": 8_000.0,
    # Recording host: ~28-31k (vs 24.6k recorded at the fleet PR).
    "40-machine": 6_000.0,
    # Recording host: ~104-111k.
    "diurnal-autoscale": 30_000.0,
    # Recording host: ~140-150k.
    "fleet-burst": 25_000.0,
    # Recording host (1 CPU): ~64-70k serial; floors sit ~4-5x below so a
    # slow runner doesn't trip them.
    "fleet-parallel": 15_000.0,
    "fleet-parallel-4w": 15_000.0,
}

#: Wall-clock speedup the sharded run must show over the serial run of the
#: identical trace at 4 workers.  Only meaningful with real CPUs to put the
#: workers on: the gate is enforced when REPRO_PERF_ENFORCE_FLOOR=1 *and*
#: the host has at least MIN_PARALLEL_CPUS usable cores (GitHub's
#: ubuntu-latest runners have 4).  On smaller hosts (e.g. a 1-CPU container,
#: where time-sliced workers measure ~0.9x) the speedup is still recorded in
#: BENCH_perf.json's parallel_speedup section, with host_cpus alongside.
MIN_PARALLEL_SPEEDUP = 1.8
MIN_PARALLEL_CPUS = 4

_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def test_perf_scaling(run_once):
    profiler = cProfile.Profile() if os.environ.get("REPRO_PERF_PROFILE") == "1" else None

    def _run():
        samples = []
        for scenario in SCALING_SCENARIOS:
            if profiler is not None:
                profiler.enable()
            samples.append(run_perf_scenario(scenario))
            if profiler is not None:
                profiler.disable()
        return samples

    samples = run_once(_run)
    profile = profile_top_functions(profiler) if profiler is not None else None
    report = write_bench_report(_REPORT_PATH, samples, baseline=SEED_BASELINE, profile=profile)

    rows = {}
    for sample in samples:
        entry = report["scenarios"][sample.scenario]
        rows[sample.scenario] = {
            "machines": sample.machines,
            "requests": sample.requests,
            "wall_s": sample.wall_s,
            "events/s": sample.events_per_s,
            "requests/s": sample.requests_per_s,
            "speedup_vs_seed": entry.get("speedup", float("nan")),
        }
        # Every request must drain; a partial completion means the scenario
        # (not the measurement) is broken.
        assert sample.completed == sample.requests
        # Bit-identity guard: simulated results must not drift with perf work.
        assert repr(sample.sim_time_s) == EXPECTED_SIM_TIME[sample.scenario]
        if os.environ.get("REPRO_PERF_ENFORCE_FLOOR") == "1":
            assert sample.events_per_s >= EVENTS_PER_S_FLOOR[sample.scenario], (
                f"{sample.scenario}: {sample.events_per_s:.0f} logical events/s fell below the "
                f"recorded floor {EVENTS_PER_S_FLOOR[sample.scenario]:.0f}"
            )
    print_table("Simulator scaling (burst regime)", rows)

    headline = report["scenarios"]["40-machine"]
    assert headline["speedup"] > 0
    if os.environ.get("REPRO_PERF_ENFORCE_SPEEDUP") == "1":
        assert headline["speedup"] >= MIN_HEADLINE_SPEEDUP

    # Sharded-engine gates: the serial/parallel pair must agree on every
    # simulation output (wall time is the only legitimate difference), and
    # on a multi-core enforcing host the 4-worker run must actually be fast.
    parallel = report.get("parallel_speedup")
    assert parallel is not None
    serial_entry = report["scenarios"]["fleet-parallel"]
    sharded_entry = report["scenarios"]["fleet-parallel-4w"]
    for key in ("requests", "completed", "events", "events_cancelled",
                "events_coalesced", "tokens_generated", "sim_time_s"):
        assert serial_entry[key] == sharded_entry[key], (
            f"serial/sharded divergence on {key}: "
            f"{serial_entry[key]!r} != {sharded_entry[key]!r}"
        )
    assert sharded_entry["parallel_workers"] == 4
    if (
        os.environ.get("REPRO_PERF_ENFORCE_FLOOR") == "1"
        and parallel["host_cpus"] >= MIN_PARALLEL_CPUS
    ):
        assert parallel["speedup"] >= MIN_PARALLEL_SPEEDUP, (
            f"sharded fleet run shows {parallel['speedup']:.2f}x over serial "
            f"on a {parallel['host_cpus']}-CPU host; floor is {MIN_PARALLEL_SPEEDUP}x"
        )
    assert _REPORT_PATH.exists()
