"""Fig. 16: latency metrics across input loads for iso-power clusters."""

from repro.experiments import fig16_latency_vs_load, scaled_design_suite

from benchmarks.conftest import print_table

RATES = (10.0, 16.0, 22.0)


def test_fig16_conversation(run_once):
    suite = scaled_design_suite(workload="conversation", scale=0.2)

    def run():
        return fig16_latency_vs_load(suite, workload="conversation", rates=RATES, duration_s=60.0)

    results = run_once(run)
    for rate in RATES:
        table = {name: {
            "ttft_p90_ms": per_rate[rate]["ttft_p90"] * 1e3,
            "tbt_p90_ms": per_rate[rate]["tbt_p90"] * 1e3,
            "e2e_p90_s": per_rate[rate]["e2e_p90"],
            "slo_ok": per_rate[rate]["slo_ok"],
        } for name, per_rate in results.items()}
        print_table(f"Fig. 16b (conversation, iso-power, {rate:.0f} RPS scaled)", table, "{:.1f}")

    low, high = RATES[0], RATES[-1]
    # Splitwise designs improve P90 TTFT over the H100 baseline at moderate load.
    assert results["Splitwise-HH"][low]["ttft_p90"] < results["Baseline-H100"][low]["ttft_p90"]
    assert results["Splitwise-HHcap"][low]["ttft_p90"] < results["Baseline-H100"][low]["ttft_p90"]
    # Every design that holds the SLO at the high load also held it at the low load.
    for name, per_rate in results.items():
        if per_rate[high]["slo_ok"]:
            assert per_rate[low]["slo_ok"], name
    # At least one Splitwise design sustains a load at which Baseline-A100 has
    # already violated its SLO (the paper's headline throughput gain).
    splitwise_ok = [
        name for name, per_rate in results.items()
        if name.startswith("Splitwise") and per_rate[high]["slo_ok"]
    ]
    assert splitwise_ok
    assert not results["Baseline-A100"][high]["slo_ok"]
