"""Fig. 9: impact of GPU power caps on prompt and token latency."""

from repro.experiments import fig9_power_cap

from benchmarks.conftest import print_table


def test_fig9_power_cap(run_once):
    results = run_once(fig9_power_cap)
    print_table("Fig. 9: latency (ms) under per-GPU power caps (700W -> 200W)", results, "{:.0f}")
    ttft = results["ttft_ms"]
    tbt = results["tbt_ms"]
    # The prompt phase degrades sharply under capping ...
    assert ttft[350] > 1.8 * ttft[700]
    assert ttft[200] > 3.0 * ttft[700]
    # ... while the token phase is unaffected down to ~50% of TDP (Insight VI).
    assert tbt[350] / tbt[700] < 1.05
    assert tbt[200] > tbt[700]
