"""Fig. 19: iso-throughput power-optimized and cost-optimized cluster summaries."""

from repro.experiments import iso_throughput_summary

from benchmarks.conftest import print_table


def test_fig19a_power_optimized(run_once):
    results = run_once(iso_throughput_summary, goal="power", rate_rps=12.0, duration_s=60.0)
    print_table("Fig. 19a: iso-throughput power-optimized (normalized to Baseline-A100)", results["normalized"])
    normalized = results["normalized"]
    raw = results["raw"]
    # Splitwise designs reach the target throughput with fewer servers and
    # less provisioned power than the A100 baseline.
    for name in ("Splitwise-HH", "Splitwise-HHcap", "Splitwise-AA"):
        assert normalized[name]["num_servers"] < 1.0
        assert normalized[name]["power_kw"] < 1.0
    # HHcap trades a little cost for the lowest power of the H100 designs.
    assert raw["Splitwise-HHcap"]["power_kw"] <= raw["Splitwise-HH"]["power_kw"] * 1.05
    # Every design sustains the common target load.
    for name, row in raw.items():
        assert row["completion_rate"] >= 0.95, name


def test_fig19b_cost_optimized(run_once):
    results = run_once(iso_throughput_summary, goal="cost", rate_rps=12.0, duration_s=60.0)
    print_table("Fig. 19b: iso-throughput cost-optimized (normalized to Baseline-A100)", results["normalized"])
    normalized = results["normalized"]
    # The cost-optimized Splitwise configurations undercut the A100 baseline
    # on cost while also using far fewer servers.
    for name in ("Splitwise-HH", "Splitwise-HA", "Splitwise-AA"):
        assert normalized[name]["cost_per_hour"] < 1.0
        assert normalized[name]["num_servers"] < 1.0
