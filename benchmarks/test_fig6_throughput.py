"""Fig. 6: phase throughput vs batched tokens / batch size."""

from repro.experiments import fig6_throughput

from benchmarks.conftest import print_table


def test_fig6_throughput(run_once):
    results = run_once(fig6_throughput)
    print_table("Fig. 6a: prompt throughput (tokens/s) vs batched prompt tokens", results["prompt"], "{:.0f}")
    print_table("Fig. 6b: token throughput (tokens/s) vs decode batch size", results["token"], "{:.0f}")

    for model_name, curve in results["prompt"].items():
        peak = max(curve, key=curve.get)
        # Insight IV: prompt throughput peaks near 2048 batched tokens and
        # declines afterwards — the basis of the 2048-token MLS limit.
        assert 1024 <= peak <= 4096, model_name
        assert curve[32768] < curve[peak]

    for model_name, curve in results["token"].items():
        # Token throughput keeps increasing with batch size (until memory).
        batches = sorted(curve)
        values = [curve[b] for b in batches]
        assert values == sorted(values), model_name
        assert curve[64] > 5 * curve[1]
