"""Fig. 8: GPU power draw vs batch size for the prompt and token phases."""

from repro.experiments import fig8_power

from benchmarks.conftest import print_table


def test_fig8_power(run_once):
    results = run_once(fig8_power)
    print_table("Fig. 8: power draw (fraction of TDP)", results, "{:.2f}")
    prompt = results["prompt"]
    token = results["token"]
    # Prompt power climbs toward TDP with batch size.
    assert prompt[8192] >= 0.95
    assert prompt[8192] > prompt[512]
    # Token power is flat and close to half of TDP regardless of batching.
    assert max(token.values()) - min(token.values()) < 0.1
    assert 0.35 <= max(token.values()) <= 0.6
