"""Fig. 3: prompt and generated token distributions of the two workloads."""

from repro.experiments import fig3_token_distributions

from benchmarks.conftest import print_table


def test_fig3_token_distributions(run_once):
    table = run_once(fig3_token_distributions, sample_size=50000)
    print_table("Fig. 3: token-count distributions (paper medians: coding 1500/13, conversation 1020/129)", table)
    assert abs(table["coding"]["prompt_p50"] - 1500) / 1500 < 0.08
    assert 10 <= table["coding"]["output_p50"] <= 17
    assert abs(table["conversation"]["prompt_p50"] - 1020) / 1020 < 0.10
    assert 60 <= table["conversation"]["output_p50"] <= 250  # wide bimodal plateau around the median
