"""Fig. 14: visible KV-cache transfer latency vs prompt size."""

from repro.experiments import fig14_transfer_latency

from benchmarks.conftest import print_table


def test_fig14_kv_transfer(run_once):
    results = run_once(fig14_transfer_latency)
    print_table("Fig. 14: visible KV-cache transfer latency (ms) vs prompt size", results, "{:.1f}")

    # Serialized transfer grows linearly with prompt size; H100 links (400 Gbps)
    # move it about twice as fast as A100 links (200 Gbps).
    assert results["A100-Serialized"][2048] > 3 * results["A100-Serialized"][512]
    ratio = results["A100-Serialized"][2048] / results["H100-Serialized"][2048]
    assert 1.8 <= ratio <= 2.2

    # Per-layer overlapped transfer leaves only a small, roughly constant
    # residue (~8 ms on A100, ~5 ms on H100 in the paper).
    assert 4.0 <= results["A100-Per-Layer"][2048] <= 12.0
    assert 2.0 <= results["H100-Per-Layer"][2048] <= 8.0
    spread = max(results["H100-Per-Layer"].values()) - min(results["H100-Per-Layer"].values())
    assert spread < 5.0
