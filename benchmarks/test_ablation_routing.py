"""Ablation (§IV-A): JSQ routing vs round-robin vs random routing."""

from repro.core.cluster import ClusterSimulation
from repro.core.designs import splitwise_hh
from repro.workload.generator import generate_trace

from benchmarks.conftest import print_table

POLICIES = ("jsq", "round-robin", "random")


def _run_routing_comparison():
    trace = generate_trace("conversation", rate_rps=14.0, duration_s=50.0, seed=41)
    design = splitwise_hh(3, 2)
    results = {}
    for routing in POLICIES:
        result = ClusterSimulation(design, routing=routing).run(trace)
        metrics = result.request_metrics()
        results[routing] = {
            "ttft_p50_s": metrics.ttft.p50,
            "ttft_p99_s": metrics.ttft.p99,
            "e2e_p90_s": metrics.e2e.p90,
            "slo_ok": float(result.slo_report().satisfied),
        }
    return results


def test_ablation_routing_policies(run_once):
    results = run_once(_run_routing_comparison)
    print_table("Ablation: CLS routing policy (Splitwise-HH 3P,2T, conversation)", results)

    # JSQ (the paper's choice) is competitive with load-oblivious routing on
    # tail prompt latency at every load, and never collapses the SLO while an
    # alternative holds it.  (At moderate load the three policies are close —
    # prompt sizes are i.i.d. — so this is a sanity band, not a strict order.)
    assert results["jsq"]["ttft_p99_s"] <= results["random"]["ttft_p99_s"] * 1.25
    assert results["jsq"]["ttft_p99_s"] <= results["round-robin"]["ttft_p99_s"] * 1.25
    assert results["jsq"]["ttft_p50_s"] <= results["random"]["ttft_p50_s"] * 1.10
    if results["random"]["slo_ok"] or results["round-robin"]["slo_ok"]:
        assert results["jsq"]["slo_ok"]


def _run_failure_injection():
    trace = generate_trace("conversation", rate_rps=10.0, duration_s=50.0, seed=43)
    design = splitwise_hh(3, 2)
    results = {}
    clean = ClusterSimulation(design).run(trace)
    faulty = ClusterSimulation(design).run(trace, failures=[(20.0, "token-1"), (30.0, "prompt-2")])
    for label, result in (("no failures", clean), ("2 machine failures", faulty)):
        metrics = result.request_metrics()
        results[label] = {
            "completion": result.completion_rate,
            "restarted": float(len(result.scheduler.restarted_requests)),
            "ttft_p99_s": metrics.ttft.p99,
            "e2e_p99_s": metrics.e2e.p99,
        }
    return results


def test_ablation_failure_recovery(run_once):
    """§IV-E: requests hit by machine failures restart and still complete."""
    results = run_once(_run_failure_injection)
    print_table("Fault tolerance: restart-on-failure under 2 injected machine failures", results)

    assert results["no failures"]["completion"] == 1.0
    assert results["2 machine failures"]["completion"] == 1.0
    assert results["2 machine failures"]["restarted"] > 0
    # Restarts cost latency at the tail but the cluster keeps serving.
    assert results["2 machine failures"]["e2e_p99_s"] >= results["no failures"]["e2e_p99_s"]
