"""Table IV: P50 per-request metrics on A100 vs H100 without batching."""

from repro.experiments import table4_gpu_comparison

from benchmarks.conftest import print_table


def test_table4_gpu_comparison(run_once):
    table = run_once(table4_gpu_comparison, num_requests=500)
    for workload, rows in table.items():
        print_table(f"Table IV ({workload}): per-request metrics, A100 vs H100", rows)
    for workload in ("coding", "conversation"):
        ratios = table[workload]["ratio_h100_over_a100"]
        # Paper: TTFT ratio ~0.51-0.54, TBT ratio ~0.70, E2E ratio 0.58-0.68,
        # cost ratio > 1 (H100 more expensive per request), energy ratio ~1-1.2.
        assert 0.45 <= ratios["ttft_ms"] <= 0.60
        assert 0.60 <= ratios["tbt_ms"] <= 0.80
        assert 0.50 <= ratios["e2e_ms"] <= 0.80
        assert ratios["cost_usd"] > 1.0
        assert 0.85 <= ratios["energy_wh"] <= 1.4
