"""§VI-E: batch-job throughput per cost when clusters are stressed."""

from repro.experiments import batch_job_throughput_per_cost

from benchmarks.conftest import print_table


def test_sec6e_batch_throughput_per_cost(run_once):
    results = run_once(
        batch_job_throughput_per_cost, scale=0.15, stress_rate=35.0, duration_s=40.0
    )
    print_table("§VI-E: stressed clusters, throughput per cost (batch jobs, no SLO)", results)

    # Paper: A100-based clusters deliver the best RPS/$ for batch jobs
    # (0.89 vs 0.75 RPS/$); Splitwise devolves into its baseline at saturation,
    # so the split and non-split variants land close together.
    assert results["Baseline-A100"]["rps_per_dollar_hour"] >= results["Baseline-H100"]["rps_per_dollar_hour"]
    assert results["Splitwise-AA"]["rps_per_dollar_hour"] >= results["Splitwise-HH"]["rps_per_dollar_hour"] * 0.95
    aa_vs_baseline = (
        results["Splitwise-AA"]["rps_per_dollar_hour"] / results["Baseline-A100"]["rps_per_dollar_hour"]
    )
    assert 0.7 <= aa_vs_baseline <= 1.3
